// Parallel shard scheduler experiment (§4.2.2, §6.4): node shards are
// independent because Scribe buckets decouple them, so running a node's
// shards on a worker pool should scale round throughput with the thread
// count until the hardware runs out. A Fig-9-style ingest workload (one
// scorer node over a multi-bucket events category) is drained once per
// thread count; every mode replays the same retained Scribe input from
// offset 0, which is exactly the multiplexed reader decoupling the paper's
// design rests on.
//
// The scorer models the paper's Figure 3 Scorer, which issues "a query to a
// separate prediction service" per event: a short blocking remote call plus
// a little local hashing. That latency-bound shape is what shard
// parallelism buys back — overlapped remote calls scale with the worker
// count even when cores are scarce, while the CPU part scales with
// available cores.
//
// `--continuous` runs the second experiment (§4.2 processing overlap): a
// *skewed* workload where one hot bucket holds most of the input, and an
// at-most-once output whose delivery cost lands in the checkpoint-commit
// phase. The round loop serializes process-then-commit per shard and
// barriers every round on the hot shard; continuous execution overlaps
// batch N's commit with batch N+1's processing, so it must beat the round
// loop on wall clock. `--smoke` shrinks the input for CI; `--out <path>`
// redirects the JSON (default BENCH_CONTINUOUS.json).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "common/fs.h"
#include "common/hash.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

constexpr int kBuckets = 8;
constexpr int kEvents = 8'000;
constexpr int kHashRounds = 8;          // Local feature hashing per event.
constexpr int kRemoteCallMicros = 30;   // Prediction-service RTT per event.

// The Figure 3 Scorer: per event, a blocking call to a remote prediction
// service (modeled as a short sleep) plus local feature hashing.
class ScorerProcessor : public stylus::StatelessProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* /*out*/) override {
    std::this_thread::sleep_for(std::chrono::microseconds(kRemoteCallMicros));
    const std::string text = event.row.Get("text").ToString();
    uint64_t h = 0;
    for (int i = 0; i < kHashRounds; ++i) {
      h = Fnv1a64(text) ^ (h * 1099511628211ULL);
    }
    digest_ ^= h;  // Keep the loop observable.
  }

 private:
  uint64_t digest_ = 0;
};

// Scorer variant that forwards the scored event to its output sink — the
// shape of the skewed-workload experiment, where delivery has a cost too.
class ScorerEmitProcessor : public stylus::StatelessProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    std::this_thread::sleep_for(std::chrono::microseconds(kRemoteCallMicros));
    const std::string text = event.row.Get("text").ToString();
    uint64_t h = 0;
    for (int i = 0; i < kHashRounds; ++i) {
      h = Fnv1a64(text) ^ (h * 1099511628211ULL);
    }
    digest_ ^= h;
    out->push_back(event.row);
  }

 private:
  uint64_t digest_ = 0;
};

double DrainOnce(scribe::Scribe* bus, Clock* clock, const std::string& dir,
                 int num_threads, size_t* processed) {
  stylus::Pipeline pipeline(bus, clock,
                            stylus::Pipeline::Options{num_threads});
  stylus::NodeConfig node;
  node.name = "scorer";
  node.input_category = "events";
  node.input_schema = EventsSchema();
  node.stateless_factory = [] {
    return std::make_unique<ScorerProcessor>();
  };
  node.backend = stylus::StateBackend::kNone;
  node.state_dir = dir + "/threads-" + std::to_string(num_threads);
  node.checkpoint_every_events = 512;
  if (!pipeline.AddNode(node).ok()) return -1.0;

  const auto start = std::chrono::steady_clock::now();
  auto drained = pipeline.RunUntilQuiescent(/*max_rounds=*/100000);
  const auto end = std::chrono::steady_clock::now();
  if (!drained.ok()) {
    fprintf(stderr, "drain failed: %s\n", drained.status().ToString().c_str());
    return -1.0;
  }
  *processed = drained.value();
  return std::chrono::duration<double>(end - start).count();
}

// Delivery to a slow downstream (e.g. a remote service behind the sink):
// with at-most-once output this cost is paid in the commit phase, after the
// checkpoint — exactly the side effect continuous execution overlaps with
// the next batch.
class SlowDeliverySink : public stylus::OutputSink {
 public:
  explicit SlowDeliverySink(int delay_micros) : delay_micros_(delay_micros) {}
  Status Emit(const Row& /*row*/) override {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    delivered_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  size_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  const int delay_micros_;
  std::atomic<size_t> delivered_{0};
};

// One drain of the skewed workload; continuous=false uses the round loop.
double DrainSkewed(scribe::Scribe* bus, Clock* clock, const std::string& dir,
                   bool continuous, size_t* processed, size_t* delivered) {
  stylus::Pipeline::Options options;
  options.num_threads = 4;
  options.commit_threads = 2;
  options.overlap_commits = true;
  options.idle_sleep_micros = 50;
  stylus::Pipeline pipeline(bus, clock, options);

  auto sink = std::make_shared<SlowDeliverySink>(kRemoteCallMicros);
  stylus::NodeConfig node;
  node.name = "scorer";
  node.input_category = "events_skew";
  node.input_schema = EventsSchema();
  node.stateless_factory = [] {
    return std::make_unique<ScorerEmitProcessor>();
  };
  node.state_semantics = stylus::StateSemantics::kAtMostOnce;
  node.output_semantics = stylus::OutputSemantics::kAtMostOnce;
  node.backend = stylus::StateBackend::kNone;
  node.state_dir = dir + (continuous ? "/continuous" : "/rounds");
  node.checkpoint_every_events = 64;
  node.sink = sink;
  if (!pipeline.AddNode(node).ok()) return -1.0;

  const auto start = std::chrono::steady_clock::now();
  StatusOr<size_t> drained = continuous
                                 ? [&]() -> StatusOr<size_t> {
                                     Status st = pipeline.Start();
                                     if (!st.ok()) return st;
                                     auto n = pipeline.WaitUntilQuiescent(
                                         /*timeout_ms=*/120'000);
                                     Status stop = pipeline.Stop();
                                     if (!stop.ok()) return stop;
                                     return n;
                                   }()
                                 : pipeline.RunUntilQuiescent(100000);
  const auto end = std::chrono::steady_clock::now();
  if (!drained.ok()) {
    fprintf(stderr, "drain failed: %s\n", drained.status().ToString().c_str());
    return -1.0;
  }
  *processed = drained.value();
  *delivered = sink->delivered();
  return std::chrono::duration<double>(end - start).count();
}

int RunContinuousComparison(bool smoke, const std::string& out_path) {
  const int events = smoke ? 2'000 : 8'000;
  printf("=== Continuous vs round loop on a skewed workload ===\n");
  printf("  (%d events, %d buckets, 60%% in the hot bucket, %dus remote call "
         "+ %dus delivery per event)\n\n",
         events, kBuckets, kRemoteCallMicros, kRemoteCallMicros);

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events_skew";
  category.num_buckets = kBuckets;
  if (!bus.CreateCategory(category).ok()) return 1;

  EventGenOptions gen_options;
  gen_options.text_bytes = 160;
  EventGenerator generator(gen_options);
  for (int i = 0; i < events; ++i) {
    Row row = generator.NextRow();
    // 60% of the input lands in bucket 0; the rest spreads evenly.
    const int bucket = (i % 5 < 3) ? 0 : 1 + (i % (kBuckets - 1));
    if (!bus.Write("events_skew", bucket, generator.codec().Encode(row)).ok()) {
      return 1;
    }
  }

  const std::string dir = MakeTempDir("bench_continuous");
  double seconds[2] = {0, 0};
  for (const bool continuous : {false, true}) {
    size_t processed = 0;
    size_t delivered = 0;
    const double s =
        DrainSkewed(&bus, &clock, dir, continuous, &processed, &delivered);
    if (s < 0 || processed != static_cast<size_t>(events) ||
        delivered != static_cast<size_t>(events)) {
      fprintf(stderr, "%s processed %zu delivered %zu of %d events\n",
              continuous ? "continuous" : "rounds", processed, delivered,
              events);
      (void)RemoveAll(dir);
      return 1;
    }
    seconds[continuous ? 1 : 0] = s;
    printf("%s\n",
           ReportLine(continuous ? "continuous" : "round loop",
                      continuous ? "overlapped commit (Start/Stop)"
                                 : "barrier per round (RunRound)",
                      std::to_string(static_cast<int>(events / s)) +
                          " events/s")
               .c_str());
  }
  (void)RemoveAll(dir);

  const double speedup = seconds[0] / seconds[1];
  printf("\n  continuous speedup over round loop: %.2fx (target > 1x): %s\n",
         speedup, speedup > 1.0 ? "PASS" : "FAIL");

  char json[512];
  snprintf(json, sizeof(json),
           "{\n"
           "  \"bench\": \"bench_parallel_pipeline --continuous\",\n"
           "  \"smoke\": %s,\n"
           "  \"buckets\": %d,\n"
           "  \"events\": %d,\n"
           "  \"round_loop_seconds\": %.3f,\n"
           "  \"continuous_seconds\": %.3f,\n"
           "  \"continuous_speedup\": %.3f\n"
           "}\n",
           smoke ? "true" : "false", kBuckets, events, seconds[0], seconds[1],
           speedup);
  const Status write = WriteFileAtomic(out_path, json);
  if (!write.ok()) {
    fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
            write.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "wrote %s\n", out_path.c_str());
  return speedup > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace fbstream::bench

int main(int argc, char** argv) {
  using namespace fbstream;
  using namespace fbstream::bench;

  bool continuous = false;
  bool smoke = false;
  std::string out = "BENCH_CONTINUOUS.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--continuous") {
      continuous = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      fprintf(stderr, "usage: %s [--continuous] [--smoke] [--out <path>]\n",
              argv[0]);
      return 2;
    }
  }
  if (continuous) return RunContinuousComparison(smoke, out);

  printf("=== Parallel shard scheduler: round throughput vs threads ===\n");
  printf("  (%d events, %d buckets, %dus remote call per event)\n\n", kEvents,
         kBuckets, kRemoteCallMicros);

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events";
  category.num_buckets = kBuckets;
  if (!bus.CreateCategory(category).ok()) return 1;

  EventGenOptions gen_options;
  gen_options.text_bytes = 160;
  EventGenerator generator(gen_options);
  for (int i = 0; i < kEvents; ++i) {
    Row row = generator.NextRow();
    const std::string key = row.Get("dim_id").ToString();
    if (!bus.WriteSharded("events", key, generator.codec().Encode(row)).ok()) {
      return 1;
    }
  }

  const std::string dir = MakeTempDir("bench_parallel");
  double serial_seconds = 0;
  double best_speedup = 0;
  double speedup_at_4 = 0;
  for (const int threads : {1, 2, 4, 8}) {
    size_t processed = 0;
    const double seconds =
        DrainOnce(&bus, &clock, dir, threads, &processed);
    if (seconds < 0 || processed != static_cast<size_t>(kEvents)) {
      fprintf(stderr, "threads=%d processed %zu of %d events\n", threads,
              processed, kEvents);
      return 1;
    }
    if (threads == 1) serial_seconds = seconds;
    const double speedup = serial_seconds / seconds;
    if (threads == 4) speedup_at_4 = speedup;
    if (speedup > best_speedup) best_speedup = speedup;
    printf("%s\n",
           ReportLine("threads=" + std::to_string(threads),
                      threads == 1 ? "baseline" : "linear-ish scaling",
                      std::to_string(static_cast<int>(kEvents / seconds)) +
                          " events/s (" + std::to_string(speedup) + "x)")
               .c_str());
  }
  printf("\n");
  printf("  speedup @4 threads: %.2fx (target >= 2x on %d buckets): %s\n",
         speedup_at_4, kBuckets, speedup_at_4 >= 2.0 ? "PASS" : "FAIL");
  (void)RemoveAll(dir);
  return speedup_at_4 >= 2.0 ? 0 : 1;
}
