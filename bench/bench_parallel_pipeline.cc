// Parallel shard scheduler experiment (§4.2.2, §6.4): node shards are
// independent because Scribe buckets decouple them, so running a node's
// shards on a worker pool should scale round throughput with the thread
// count until the hardware runs out. A Fig-9-style ingest workload (one
// scorer node over a multi-bucket events category) is drained once per
// thread count; every mode replays the same retained Scribe input from
// offset 0, which is exactly the multiplexed reader decoupling the paper's
// design rests on.
//
// The scorer models the paper's Figure 3 Scorer, which issues "a query to a
// separate prediction service" per event: a short blocking remote call plus
// a little local hashing. That latency-bound shape is what shard
// parallelism buys back — overlapped remote calls scale with the worker
// count even when cores are scarce, while the CPU part scales with
// available cores.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "common/fs.h"
#include "common/hash.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

constexpr int kBuckets = 8;
constexpr int kEvents = 8'000;
constexpr int kHashRounds = 8;          // Local feature hashing per event.
constexpr int kRemoteCallMicros = 30;   // Prediction-service RTT per event.

// The Figure 3 Scorer: per event, a blocking call to a remote prediction
// service (modeled as a short sleep) plus local feature hashing.
class ScorerProcessor : public stylus::StatelessProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* /*out*/) override {
    std::this_thread::sleep_for(std::chrono::microseconds(kRemoteCallMicros));
    const std::string text = event.row.Get("text").ToString();
    uint64_t h = 0;
    for (int i = 0; i < kHashRounds; ++i) {
      h = Fnv1a64(text) ^ (h * 1099511628211ULL);
    }
    digest_ ^= h;  // Keep the loop observable.
  }

 private:
  uint64_t digest_ = 0;
};

double DrainOnce(scribe::Scribe* bus, Clock* clock, const std::string& dir,
                 int num_threads, size_t* processed) {
  stylus::Pipeline pipeline(bus, clock,
                            stylus::Pipeline::Options{num_threads});
  stylus::NodeConfig node;
  node.name = "scorer";
  node.input_category = "events";
  node.input_schema = EventsSchema();
  node.stateless_factory = [] {
    return std::make_unique<ScorerProcessor>();
  };
  node.backend = stylus::StateBackend::kNone;
  node.state_dir = dir + "/threads-" + std::to_string(num_threads);
  node.checkpoint_every_events = 512;
  if (!pipeline.AddNode(node).ok()) return -1.0;

  const auto start = std::chrono::steady_clock::now();
  auto drained = pipeline.RunUntilQuiescent(/*max_rounds=*/100000);
  const auto end = std::chrono::steady_clock::now();
  if (!drained.ok()) {
    fprintf(stderr, "drain failed: %s\n", drained.status().ToString().c_str());
    return -1.0;
  }
  *processed = drained.value();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  using namespace fbstream;
  using namespace fbstream::bench;

  printf("=== Parallel shard scheduler: round throughput vs threads ===\n");
  printf("  (%d events, %d buckets, %dus remote call per event)\n\n", kEvents,
         kBuckets, kRemoteCallMicros);

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events";
  category.num_buckets = kBuckets;
  if (!bus.CreateCategory(category).ok()) return 1;

  EventGenOptions gen_options;
  gen_options.text_bytes = 160;
  EventGenerator generator(gen_options);
  for (int i = 0; i < kEvents; ++i) {
    Row row = generator.NextRow();
    const std::string key = row.Get("dim_id").ToString();
    if (!bus.WriteSharded("events", key, generator.codec().Encode(row)).ok()) {
      return 1;
    }
  }

  const std::string dir = MakeTempDir("bench_parallel");
  double serial_seconds = 0;
  double best_speedup = 0;
  double speedup_at_4 = 0;
  for (const int threads : {1, 2, 4, 8}) {
    size_t processed = 0;
    const double seconds =
        DrainOnce(&bus, &clock, dir, threads, &processed);
    if (seconds < 0 || processed != static_cast<size_t>(kEvents)) {
      fprintf(stderr, "threads=%d processed %zu of %d events\n", threads,
              processed, kEvents);
      return 1;
    }
    if (threads == 1) serial_seconds = seconds;
    const double speedup = serial_seconds / seconds;
    if (threads == 4) speedup_at_4 = speedup;
    if (speedup > best_speedup) best_speedup = speedup;
    printf("%s\n",
           ReportLine("threads=" + std::to_string(threads),
                      threads == 1 ? "baseline" : "linear-ish scaling",
                      std::to_string(static_cast<int>(kEvents / seconds)) +
                          " events/s (" + std::to_string(speedup) + "x)")
               .c_str());
  }
  printf("\n");
  printf("  speedup @4 threads: %.2fx (target >= 2x on %d buckets): %s\n",
         speedup_at_4, kBuckets, speedup_at_4 >= 2.0 ? "PASS" : "FAIL");
  (void)RemoveAll(dir);
  return speedup_at_4 >= 2.0 ? 0 : 1;
}
