// Reproduces Figure 7 ("The output of a stateful processor with different
// state semantics") and Figure 8 (the supported state x output semantics
// matrix).
//
// A Counter Node (Figure 6) consumes a fixed event stream and emits its
// counter at every checkpoint. A crash is injected mid-stream *between the
// two checkpoint writes* — the window whose ordering defines the state
// semantics (§4.3.1). The emitted counter series shows:
//   (A) ideal           — monotone ramp to the true count
//   (B) at-most-once    — a permanent dip below ideal after the failure
//   (C) at-least-once   — a jump above ideal after the failure
//   (D) exactly-once    — indistinguishable from ideal

#include <cstdio>
#include <string>
#include <vector>

#include "common/fs.h"
#include "core/node.h"
#include "core/processor.h"
#include "core/sink.h"
#include "scribe/scribe.h"

namespace fbstream::stylus {
namespace {

SchemaPtr InputSchema() {
  return Schema::Make({{"ts", ValueType::kInt64}, {"id", ValueType::kInt64}});
}

class CounterProcessor : public StatefulProcessor {
 public:
  void Process(const Event&, std::vector<Row>*) override { ++count_; }
  void OnCheckpoint(Micros, std::vector<Row>* out) override {
    auto schema = Schema::Make({{"count", ValueType::kInt64}});
    out->push_back(Row(schema, {Value(count_)}));
  }
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

struct RunResult {
  std::vector<int64_t> series;  // Counter value at each checkpoint.
  int64_t final_count = 0;
};

RunResult RunCounter(StateSemantics state, OutputSemantics output,
                     bool inject_crash, int total_events,
                     int events_per_checkpoint) {
  const std::string dir = MakeTempDir("fig7");
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "in";
  (void)bus.CreateCategory(category);

  TextRowCodec codec(InputSchema());
  for (int i = 0; i < total_events; ++i) {
    Row row(InputSchema(), {Value(i), Value(i)});
    (void)bus.Write("in", 0, codec.Encode(row));
  }

  auto sink = std::make_shared<CollectingSink>();
  NodeConfig config;
  config.name = "counter";
  config.input_category = "in";
  config.input_schema = InputSchema();
  config.event_time_column = "ts";
  config.stateful_factory = [] { return std::make_unique<CounterProcessor>(); };
  config.state_semantics = state;
  config.output_semantics = output;
  config.checkpoint_every_events = static_cast<size_t>(events_per_checkpoint);
  config.backend = StateBackend::kLocal;
  config.state_dir = dir + "/state";
  config.sink = sink;

  auto shard = NodeShard::Create(config, &bus, &clock, 0);
  if (!shard.ok()) {
    fprintf(stderr, "create failed: %s\n", shard.status().ToString().c_str());
    return {};
  }
  if (inject_crash) {
    int calls = 0;
    (*shard)->SetFailureInjector([&calls, state](FailurePoint point) {
      // Exactly-once has no between-writes window; crash it after
      // processing instead to show the atomic checkpoint absorbing the
      // failure.
      const FailurePoint target = state == StateSemantics::kExactlyOnce
                                      ? FailurePoint::kAfterProcessing
                                      : FailurePoint::kBetweenCheckpointWrites;
      return point == target && ++calls == 5;
    });
  }
  for (int round = 0; round < 10000; ++round) {
    if (!(*shard)->alive()) {
      (void)(*shard)->Recover();
      continue;
    }
    auto n = (*shard)->RunOnce();
    if (!n.ok()) continue;  // Crashed this round; recover next round.
    if (*n == 0) break;
  }

  RunResult result;
  for (const Row& row : sink->rows()) {
    result.series.push_back(row.Get("count").CoerceInt64());
  }
  if (!result.series.empty()) result.final_count = result.series.back();
  (void)RemoveAll(dir);
  return result;
}

void PrintSeries(const char* label, const RunResult& r, int true_count) {
  printf("%-36s final=%5lld (true %d)  series:", label,
         static_cast<long long>(r.final_count), true_count);
  for (size_t i = 0; i < r.series.size(); ++i) {
    printf(" %lld", static_cast<long long>(r.series[i]));
  }
  printf("\n");
}

void RunFigure7() {
  constexpr int kEvents = 200;
  constexpr int kPerCheckpoint = 20;
  printf("=== Figure 7: stateful counter output under each semantics ===\n");
  printf("(crash injected at the 5th checkpoint; counter emitted at every "
         "checkpoint)\n\n");

  const RunResult ideal =
      RunCounter(StateSemantics::kExactlyOnce, OutputSemantics::kAtLeastOnce,
                 /*inject_crash=*/false, kEvents, kPerCheckpoint);
  PrintSeries("(A) ideal (no failure)", ideal, kEvents);

  const RunResult amo =
      RunCounter(StateSemantics::kAtMostOnce, OutputSemantics::kAtMostOnce,
                 /*inject_crash=*/true, kEvents, kPerCheckpoint);
  PrintSeries("(B) at-most-once (dips below ideal)", amo, kEvents);

  const RunResult alo =
      RunCounter(StateSemantics::kAtLeastOnce, OutputSemantics::kAtLeastOnce,
                 /*inject_crash=*/true, kEvents, kPerCheckpoint);
  PrintSeries("(C) at-least-once (jumps above ideal)", alo, kEvents);

  const RunResult eo =
      RunCounter(StateSemantics::kExactlyOnce, OutputSemantics::kAtLeastOnce,
                 /*inject_crash=*/true, kEvents, kPerCheckpoint);
  PrintSeries("(D) exactly-once (matches ideal)", eo, kEvents);

  printf("\nshape check: at-most-once %lld < ideal %d < at-least-once %lld; "
         "exactly-once == %lld\n\n",
         static_cast<long long>(amo.final_count), kEvents,
         static_cast<long long>(alo.final_count),
         static_cast<long long>(eo.final_count));
}

void RunFigure8() {
  printf("=== Figure 8: supported state x output semantics combinations "
         "===\n");
  printf("(validated live against NodeShard config checking)\n\n");
  printf("  %-16s | %-13s %-13s %-13s\n", "output \\ state", "at-least",
         "at-most", "exactly");
  const StateSemantics states[] = {StateSemantics::kAtLeastOnce,
                                   StateSemantics::kAtMostOnce,
                                   StateSemantics::kExactlyOnce};
  const OutputSemantics outputs[] = {OutputSemantics::kAtLeastOnce,
                                     OutputSemantics::kAtMostOnce,
                                     OutputSemantics::kExactlyOnce};
  for (const OutputSemantics o : outputs) {
    printf("  %-16s |", ToString(o));
    for (const StateSemantics s : states) {
      printf(" %-13s", IsSupportedCombination(s, o) ? "X" : "");
    }
    printf("\n");
  }
  printf("\n");
}

}  // namespace
}  // namespace fbstream::stylus

int main() {
  fbstream::stylus::RunFigure7();
  fbstream::stylus::RunFigure8();
  return 0;
}
