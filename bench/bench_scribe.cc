// Microbenchmarks for the Scribe message bus, supporting the paper's §2.1
// and §4.2 claims: high-throughput bucketed writes, decoupled readers,
// replay, bucket-count scaling, and seconds-scale delivery latency.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

void BM_ScribeWrite(benchmark::State& state) {
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "c";
  config.num_buckets = static_cast<int>(state.range(0));
  (void)bus.CreateCategory(config);
  EventGenerator gen;
  std::vector<std::string> payloads;
  for (int i = 0; i < 1024; ++i) payloads.push_back(gen.NextPayload());
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string& payload = payloads[i % payloads.size()];
    benchmark::DoNotOptimize(
        bus.WriteSharded("c", "key" + std::to_string(i), payload));
    bytes += payload.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["buckets"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScribeWrite)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ScribeTailRead(benchmark::State& state) {
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "c";
  (void)bus.CreateCategory(config);
  EventGenerator gen;
  size_t total_bytes = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::string payload = gen.NextPayload();
    total_bytes += payload.size();
    (void)bus.Write("c", 0, payload);
  }
  size_t bytes = 0;
  for (auto _ : state) {
    scribe::Tailer tailer(&bus, "c", 0);
    while (true) {
      auto batch = tailer.Poll(1024);
      if (batch.empty()) break;
      for (const auto& m : batch) bytes += m.payload.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScribeTailRead);

void BM_ScribeMultiplexedReaders(benchmark::State& state) {
  // §4.2.2: automatic multiplexing — N independent readers of one stream.
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "c";
  (void)bus.CreateCategory(config);
  for (int i = 0; i < 5000; ++i) (void)bus.Write("c", 0, "payload-data");
  const int readers = static_cast<int>(state.range(0));
  size_t messages = 0;
  for (auto _ : state) {
    for (int r = 0; r < readers; ++r) {
      scribe::Tailer tailer(&bus, "c", 0);
      while (true) {
        auto batch = tailer.Poll(1024);
        if (batch.empty()) break;
        messages += batch.size();
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["readers"] = static_cast<double>(readers);
}
BENCHMARK(BM_ScribeMultiplexedReaders)->Arg(1)->Arg(2)->Arg(4);

void BM_ScribeReplaySeek(benchmark::State& state) {
  // §6.2: debugging by replaying a stream from a recent offset.
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "c";
  (void)bus.CreateCategory(config);
  for (int i = 0; i < 10000; ++i) (void)bus.Write("c", 0, "payload");
  size_t messages = 0;
  for (auto _ : state) {
    scribe::Tailer tailer(&bus, "c", 0, /*start_sequence=*/5000);
    while (true) {
      auto batch = tailer.Poll(1024);
      if (batch.empty()) break;
      messages += batch.size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_ScribeReplaySeek);

}  // namespace
}  // namespace fbstream::bench

BENCHMARK_MAIN();
