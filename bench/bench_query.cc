// Query-serving benchmark: how fast is the read side while the write side
// keeps ingesting? Three isolated measurements plus one combined "dashboard
// storm" (the workload behind §5.2's migration anecdote — many charts
// refreshing against live data):
//
//   1. Scuba: the block-parallel scan (resolved column indexes, one scan
//      task per block slice) against a seed-style baseline — a serial row
//      loop resolving every column by name per row, which is what the scan
//      looked like before the query-layer rework.
//   2. Puma: compiled expression closures vs the tree-walking interpreter
//      on the same parsed expression (per-event cost, §3 "optimized for
//      compiled queries").
//   3. Laser: point-read throughput through the lock-free Db::GetInto path,
//      single-threaded and with 4 reader threads.
//   4. Storm: one writer streams events into Scribe + Scuba while four
//      dashboard threads run Scuba queries, two threads hammer Laser gets,
//      and a Puma app tails the same stream. Reports query latency
//      percentiles under that load.
//
// `--smoke` shrinks everything for CI; `--out <path>` redirects the JSON
// (default BENCH_QUERY.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "common/fs.h"
#include "common/shard_executor.h"
#include "puma/app.h"
#include "puma/compiled_expr.h"
#include "puma/expr.h"
#include "puma/expr_parser.h"
#include "puma/parser.h"
#include "scribe/scribe.h"
#include "storage/laser/laser.h"
#include "storage/scuba/scuba.h"

namespace fbstream::bench {
namespace {

constexpr int kQueryThreads = 4;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

scuba::Query DashboardQuery() {
  scuba::Query query;
  query.group_by = {"event_type"};
  query.time_column = "event_time";
  query.bucket_micros = 5 * kMicrosPerMinute;
  query.aggregates.push_back({scuba::AggKind::kCount, "", 0});
  query.aggregates.push_back({scuba::AggKind::kSum, "dim_id", 0});
  query.limit = 7;
  return query;
}

// The pre-rework scan, transcribed from the seed ScubaTable::Run: one
// serial pass, every column resolved by name per row, a fresh
// vector<string> group key built (and copied into the cell map) per row.
size_t SeedStyleScan(const std::vector<Row>& rows) {
  struct Cell {
    int64_t count = 0;
    double sum = 0;
  };
  std::map<std::pair<Micros, std::vector<std::string>>, Cell> cells;
  for (const Row& row : rows) {
    const Micros t = row.Get("event_time").CoerceInt64();
    const Micros bucket = t - (t % (5 * kMicrosPerMinute));
    std::vector<std::string> group;
    group.reserve(1);
    group.push_back(row.Get("event_type").ToString());
    Cell& cell = cells[{bucket, std::move(group)}];
    ++cell.count;
    cell.sum += row.Get("dim_id").CoerceDouble();
  }
  return cells.size();
}

struct ScubaNumbers {
  double seed_qps = 0;
  double serial_qps = 0;
  double parallel_qps = 0;
  double speedup = 0;  // parallel vs seed-style.
};

ScubaNumbers BenchScuba(bool smoke) {
  const size_t rows = smoke ? 40'000 : 400'000;
  const int reps = smoke ? 10 : 20;

  EventGenerator gen;
  std::vector<Row> raw;
  raw.reserve(rows);
  scuba::ScubaTable serial("events", EventsSchema());
  ShardExecutor pool(kQueryThreads);
  scuba::ScubaTable parallel("events", EventsSchema());
  parallel.set_query_pool(&pool);
  for (size_t i = 0; i < rows; ++i) {
    Row row = gen.NextRow();
    raw.push_back(row);
    serial.AddRow(row);
    parallel.AddRow(std::move(row));
  }

  const scuba::Query query = DashboardQuery();
  ScubaNumbers n;
  {
    const double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) (void)SeedStyleScan(raw);
    n.seed_qps = reps / (NowSeconds() - t0);
  }
  {
    const double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) (void)serial.Run(query);
    n.serial_qps = reps / (NowSeconds() - t0);
  }
  {
    const double t0 = NowSeconds();
    for (int i = 0; i < reps * 2; ++i) (void)parallel.Run(query);
    n.parallel_qps = reps * 2 / (NowSeconds() - t0);
  }
  n.speedup = n.parallel_qps / n.seed_qps;

  printf("--- Scuba: dashboard query over %zu rows ---\n", rows);
  printf("  seed-style serial scan:   %8.1f queries/s\n", n.seed_qps);
  printf("  block scan, serial:       %8.1f queries/s\n", n.serial_qps);
  printf("  block scan, %d threads:    %8.1f queries/s\n", kQueryThreads,
         n.parallel_qps);
  printf("%s\n\n",
         ReportLine("query throughput vs seed", ">= 4x",
                    std::to_string(n.speedup).substr(0, 4) + "x")
             .c_str());
  return n;
}

struct PumaNumbers {
  double interp_eps = 0;
  double compiled_eps = 0;
  double speedup = 0;
};

PumaNumbers BenchPuma(bool smoke) {
  // A dashboard-ish predicate: column references (name lookups in the
  // interpreter), builtin calls (per-call registry resolution + an argument
  // vector in the interpreter), arithmetic, short-circuit logic, and
  // conditionals whose branches the interpreter must evaluate eagerly.
  const std::string source =
      "IF(LENGTH(event_type) = 5, ABS(dim_id - 500), LENGTH(text)) > 100 "
      "OR IF(dim_id % 2 = 0, LENGTH(event_type), ROUND(event_time / 1000)) "
      "> 3";
  auto tokens = puma::Tokenize(source);
  puma::TokenCursor cursor(std::move(tokens).value());
  auto expr = puma::ParseExpression(&cursor);
  if (!expr.ok()) {
    fprintf(stderr, "parse: %s\n", expr.status().ToString().c_str());
    return {};
  }
  const puma::CompiledExpr compiled =
      puma::CompiledExpr::Compile(**expr, EventsSchema());

  EventGenerator gen;
  const size_t nrows = 4096;
  std::vector<Row> rows;
  rows.reserve(nrows);
  for (size_t i = 0; i < nrows; ++i) rows.push_back(gen.NextRow());

  const int reps = smoke ? 50 : 500;
  PumaNumbers n;
  uint64_t sink = 0;
  // Best-of-3 passes per side: single-pass timings on a loaded box swing
  // by tens of percent, and the ratio should reflect the code, not the
  // scheduler.
  for (int pass = 0; pass < 3; ++pass) {
    const double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) {
      for (const Row& row : rows) {
        sink += puma::EvalPredicate(**expr, row) ? 1 : 0;
      }
    }
    const double eps =
        static_cast<double>(reps) * nrows / (NowSeconds() - t0);
    n.interp_eps = std::max(n.interp_eps, eps);
  }
  for (int pass = 0; pass < 3; ++pass) {
    const double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) {
      for (const Row& row : rows) {
        sink += compiled.EvalBool(row) ? 1 : 0;
      }
    }
    const double eps =
        static_cast<double>(reps) * nrows / (NowSeconds() - t0);
    n.compiled_eps = std::max(n.compiled_eps, eps);
  }
  n.speedup = n.compiled_eps / n.interp_eps;

  printf("--- Puma: per-event expression evaluation ---\n");
  printf("  expr: %s\n", source.c_str());
  printf("  interpreter: %11.0f evals/s\n", n.interp_eps);
  printf("  compiled:    %11.0f evals/s   (checksum %llu)\n", n.compiled_eps,
         static_cast<unsigned long long>(sink));
  printf("%s\n\n",
         ReportLine("compiled vs interpreted", ">= 5x",
                    std::to_string(n.speedup).substr(0, 4) + "x")
             .c_str());
  return n;
}

struct LaserNumbers {
  double reads_1t = 0;
  double reads_4t = 0;
};

LaserNumbers BenchLaser(bool smoke) {
  const std::string dir = MakeTempDir("bench_query_laser");
  SimClock clock(1'000'000);
  laser::LaserAppConfig config;
  config.name = "dims";
  config.input_schema = EventsSchema();
  config.key_columns = {"dim_id"};
  config.value_columns = {"event_type", "text"};
  auto app_or = laser::LaserApp::Create(config, nullptr, &clock, dir);
  if (!app_or.ok()) {
    fprintf(stderr, "laser: %s\n", app_or.status().ToString().c_str());
    return {};
  }
  laser::LaserApp* app = app_or->get();

  constexpr int64_t kKeys = 1000;
  EventGenerator gen;
  std::vector<Row> rows;
  for (int64_t k = 0; k < kKeys; ++k) {
    Row row = gen.NextRow();
    row.Set("dim_id", Value(k));
    rows.push_back(std::move(row));
  }
  (void)app->LoadRows(rows);

  const uint64_t reads = smoke ? 50'000 : 500'000;
  LaserNumbers n;
  {
    Rng rng(1);
    const double t0 = NowSeconds();
    for (uint64_t i = 0; i < reads; ++i) {
      (void)app->Get(Value(static_cast<int64_t>(rng.Uniform(kKeys))));
    }
    n.reads_1t = static_cast<double>(reads) / (NowSeconds() - t0);
  }
  {
    std::vector<std::thread> threads;
    const double t0 = NowSeconds();
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(10 + t);
        for (uint64_t i = 0; i < reads; ++i) {
          (void)app->Get(Value(static_cast<int64_t>(rng.Uniform(kKeys))));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    n.reads_4t = static_cast<double>(reads) * 4 / (NowSeconds() - t0);
  }
  printf("--- Laser: point reads (%lld keys resident) ---\n",
         static_cast<long long>(kKeys));
  printf("  1 thread:  %11.0f reads/s\n", n.reads_1t);
  printf("  4 threads: %11.0f reads/s\n\n", n.reads_4t);
  app_or->reset();
  (void)RemoveAll(dir);
  return n;
}

constexpr char kDashboardApp[] = R"(
CREATE APPLICATION storm;
CREATE INPUT TABLE events (event_time BIGINT, event_type, dim_id BIGINT, text)
  FROM SCRIBE("events") TIME event_time;
CREATE TABLE by_type AS
  SELECT event_type, count(*) AS n, sum(dim_id) AS total
  FROM events [5 minutes];
)";

struct StormNumbers {
  uint64_t queries = 0;
  double qps = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  uint64_t rows_ingested = 0;
  uint64_t laser_reads = 0;
  uint64_t puma_rows = 0;
};

StormNumbers BenchStorm(bool smoke) {
  const double duration_s = smoke ? 0.4 : 2.0;

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events";
  (void)bus.CreateCategory(category);

  ShardExecutor pool(kQueryThreads);
  scuba::ScubaTable table("events", EventsSchema());
  table.set_query_pool(&pool);

  auto spec = puma::ParseApp(kDashboardApp);
  puma::PumaAppOptions options;
  auto app = puma::PumaApp::Create(std::move(spec).value(), &bus, &clock,
                                   options);
  if (!app.ok()) {
    fprintf(stderr, "puma: %s\n", app.status().ToString().c_str());
    return {};
  }

  const std::string laser_dir = MakeTempDir("bench_query_storm");
  laser::LaserAppConfig laser_config;
  laser_config.name = "dims";
  laser_config.input_schema = EventsSchema();
  laser_config.key_columns = {"dim_id"};
  laser_config.value_columns = {"event_type"};
  auto laser_app = laser::LaserApp::Create(laser_config, nullptr, &clock,
                                           laser_dir);
  {
    EventGenerator gen;
    std::vector<Row> seed_rows;
    for (int64_t k = 0; k < 1000; ++k) {
      Row row = gen.NextRow();
      row.Set("dim_id", Value(k));
      seed_rows.push_back(std::move(row));
    }
    (void)(*laser_app)->LoadRows(seed_rows);
  }

  std::atomic<bool> stop{false};
  StormNumbers n;

  // Live ingest: every event goes to the Scribe bus (feeding Puma) and
  // straight into the Scuba table.
  std::atomic<uint64_t> ingested{0};
  std::thread writer([&] {
    EventGenerator gen;
    TextRowCodec codec(EventsSchema());
    while (!stop.load(std::memory_order_relaxed)) {
      Row row = gen.NextRow();
      (void)bus.Write("events", 0, codec.Encode(row));
      table.AddRow(std::move(row));
      ingested.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread puma_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)(*app)->PollOnce();
    }
  });
  std::atomic<uint64_t> laser_reads{0};
  std::vector<std::thread> laser_threads;
  for (int t = 0; t < 2; ++t) {
    laser_threads.emplace_back([&, t] {
      Rng rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)(*laser_app)->Get(Value(static_cast<int64_t>(rng.Uniform(1000))));
        laser_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The dashboards: four threads refreshing the same chart continuously.
  const scuba::Query query = DashboardQuery();
  std::vector<std::vector<double>> latencies(kQueryThreads);
  std::vector<std::thread> dashboards;
  for (int t = 0; t < kQueryThreads; ++t) {
    dashboards.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const double t0 = NowSeconds();
        (void)table.Run(query);
        latencies[t].push_back((NowSeconds() - t0) * 1e6);
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration_s * 1000)));
  stop.store(true);
  writer.join();
  puma_thread.join();
  for (std::thread& t : laser_threads) t.join();
  for (std::thread& t : dashboards) t.join();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    if (all.empty()) return 0.0;
    return all[static_cast<size_t>(p * (all.size() - 1))];
  };
  n.queries = all.size();
  n.qps = all.size() / duration_s;
  n.p50_us = pct(0.50);
  n.p95_us = pct(0.95);
  n.p99_us = pct(0.99);
  n.rows_ingested = ingested.load();
  n.laser_reads = laser_reads.load();
  n.puma_rows = (*app)->rows_processed();

  printf("--- Dashboard storm: %d query threads + ingest + Puma + Laser "
         "(%.1f s) ---\n",
         kQueryThreads, duration_s);
  printf("  scuba queries: %llu (%.0f/s)  latency p50 %.0f us  p95 %.0f us  "
         "p99 %.0f us\n",
         static_cast<unsigned long long>(n.queries), n.qps, n.p50_us,
         n.p95_us, n.p99_us);
  printf("  concurrent load: %llu rows ingested, %llu laser reads, %llu "
         "puma rows folded\n\n",
         static_cast<unsigned long long>(n.rows_ingested),
         static_cast<unsigned long long>(n.laser_reads),
         static_cast<unsigned long long>(n.puma_rows));
  laser_app->reset();
  (void)RemoveAll(laser_dir);
  return n;
}

int RunAll(bool smoke, const std::string& out_path) {
  printf("=== Query serving: parallel Scuba / compiled Puma / lock-free "
         "Laser ===\n\n");
  const ScubaNumbers s = BenchScuba(smoke);
  const PumaNumbers p = BenchPuma(smoke);
  const LaserNumbers l = BenchLaser(smoke);
  const StormNumbers storm = BenchStorm(smoke);

  char json[1536];
  snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"query_serving\",\n"
      "  \"smoke\": %s,\n"
      "  \"scuba\": {\n"
      "    \"seed_style_qps\": %.1f,\n"
      "    \"serial_qps\": %.1f,\n"
      "    \"parallel_qps\": %.1f,\n"
      "    \"query_threads\": %d,\n"
      "    \"scuba_query_speedup_x\": %.2f\n"
      "  },\n"
      "  \"puma\": {\n"
      "    \"interpreted_evals_per_sec\": %.0f,\n"
      "    \"compiled_evals_per_sec\": %.0f,\n"
      "    \"puma_eval_speedup_x\": %.2f\n"
      "  },\n"
      "  \"laser\": {\n"
      "    \"reads_per_sec_1t\": %.0f,\n"
      "    \"reads_per_sec_4t\": %.0f\n"
      "  },\n"
      "  \"storm\": {\n"
      "    \"queries\": %llu,\n"
      "    \"qps\": %.1f,\n"
      "    \"p50_us\": %.0f,\n"
      "    \"p95_us\": %.0f,\n"
      "    \"p99_us\": %.0f,\n"
      "    \"rows_ingested\": %llu,\n"
      "    \"laser_reads\": %llu,\n"
      "    \"puma_rows\": %llu\n"
      "  }\n"
      "}\n",
      smoke ? "true" : "false", s.seed_qps, s.serial_qps, s.parallel_qps,
      kQueryThreads, s.speedup, p.interp_eps, p.compiled_eps, p.speedup,
      l.reads_1t, l.reads_4t, static_cast<unsigned long long>(storm.queries),
      storm.qps, storm.p50_us, storm.p95_us, storm.p99_us,
      static_cast<unsigned long long>(storm.rows_ingested),
      static_cast<unsigned long long>(storm.laser_reads),
      static_cast<unsigned long long>(storm.puma_rows));
  const Status write = WriteFileAtomic(out_path, json);
  if (!write.ok()) {
    fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
            write.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "wrote %s\n", out_path.c_str());

  // The bench is its own acceptance gate on the full run; smoke runs are
  // too small/noisy to enforce ratios.
  if (!smoke && (s.speedup < 4.0 || p.speedup < 5.0)) {
    fprintf(stderr,
            "FAIL: speedups below target (scuba %.2fx < 4x or puma %.2fx "
            "< 5x)\n",
            s.speedup, p.speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fbstream::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_QUERY.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  return fbstream::bench::RunAll(smoke, out);
}
