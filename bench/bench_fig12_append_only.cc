// Reproduces Figure 12: remote-database state saving, read-modify-write vs
// append-only write throughput, swept over the flush interval. Paper: "the
// application throughput is 25% to 200% higher with the append-only
// optimization", measured on a Stylus monoid aggregation app over a
// three-machine ZippyDB cluster.
//
// Workload: "the application aggregates its input events across many
// dimensions, which means that one input event changes many different
// values in the application state" — each event contributes to several
// dimension keys drawn from a bounded key space, so short flush intervals
// pay remote-op costs for almost every event while long intervals combine
// heavily in memory first.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/workloads.h"
#include "common/cost.h"
#include "common/fs.h"
#include "core/monoid_state.h"
#include "core/node.h"
#include "core/processor.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

using stylus::MonoidAggregator;
using stylus::MonoidMergeOperator;
using stylus::RemoteWriteMode;

constexpr int kEventsPerSecond = 500;  // Nominal input rate.
constexpr int kContributionsPerEvent = 10;
constexpr int kDimensionSpace = 300;
constexpr int kTotalEvents = 12000;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Aggregates each event into several (dimension, count) cells.
class MultiDimProcessor : public stylus::MonoidProcessor {
 public:
  MultiDimProcessor() : agg_(stylus::MakeInt64SumAggregator()), rng_(7) {}

  void Process(const stylus::Event& event,
               std::vector<Contribution>* contributions) override {
    // Per-event application work (classification, bucketing, scoring): at
    // long flush intervals this is what amortizes the remote costs.
    BurnCpuMicros(40);
    const int64_t dim = event.row.Get("dim_id").CoerceInt64();
    for (int i = 0; i < kContributionsPerEvent; ++i) {
      const uint64_t key = (static_cast<uint64_t>(dim) * 31 + i * 1009 +
                            rng_.Uniform(17)) %
                           kDimensionSpace;
      contributions->emplace_back("d" + std::to_string(key), "1");
    }
  }
  const MonoidAggregator& aggregator() const override { return *agg_; }

 private:
  std::unique_ptr<MonoidAggregator> agg_;
  Rng rng_;
};

struct RunStats {
  double events_per_second = 0;
  uint64_t remote_reads = 0;
  uint64_t remote_writes = 0;
  uint64_t remote_merges = 0;
};

RunStats RunOne(RemoteWriteMode mode, int flush_interval_seconds) {
  const std::string dir = MakeTempDir("fig12");
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "in";
  (void)bus.CreateCategory(category);
  EventGenerator gen;
  for (int i = 0; i < kTotalEvents; ++i) {
    (void)bus.Write("in", 0, gen.NextPayload());
  }

  zippydb::ClusterOptions zopt;
  zopt.num_shards = 3;  // The paper's three-machine ZippyDB cluster.
  zopt.simulate_latency = true;
  zopt.network_rtt_micros = 100;
  zopt.quorum_commit_micros = 250;
  // The read in read-modify-write is a point get through the LSM read path
  // (possibly disk); a merge write is a pure log append. This asymmetry is
  // what the append-only optimization exploits.
  zopt.read_service_micros = 600;
  zopt.per_kb_micros = 2;
  zopt.merge_operator = std::make_shared<MonoidMergeOperator>(
      std::shared_ptr<const MonoidAggregator>(
          stylus::MakeInt64SumAggregator()));
  auto cluster = zippydb::Cluster::Open(zopt, dir + "/z");
  if (!cluster.ok()) return {};

  stylus::NodeConfig config;
  config.name = "multidim";
  config.input_category = "in";
  config.input_schema = EventsSchema();
  config.event_time_column = "event_time";
  config.monoid_factory = [] { return std::make_unique<MultiDimProcessor>(); };
  config.monoid_aggregator = std::shared_ptr<const MonoidAggregator>(
      stylus::MakeInt64SumAggregator());
  config.remote = cluster->get();
  config.remote_mode = mode;
  // Flush interval in events at the nominal input rate.
  config.checkpoint_every_events =
      static_cast<size_t>(kEventsPerSecond) * flush_interval_seconds;

  auto shard = stylus::NodeShard::Create(config, &bus, &clock, 0);
  if (!shard.ok()) {
    fprintf(stderr, "%s\n", shard.status().ToString().c_str());
    return {};
  }

  const double start = NowSeconds();
  while (true) {
    auto n = (*shard)->RunOnce();
    if (!n.ok() || *n == 0) break;
  }
  const double secs = NowSeconds() - start;

  RunStats stats;
  stats.events_per_second = kTotalEvents / secs;
  stats.remote_reads = (*cluster)->stats().reads.load();
  stats.remote_writes = (*cluster)->stats().writes.load();
  stats.remote_merges = (*cluster)->stats().merges.load();
  (void)RemoveAll(dir);
  return stats;
}

void Run() {
  printf("=== Figure 12: remote DB state saving — read-modify-write vs "
         "append-only ===\n");
  printf("(Stylus monoid app, %d contributions/event over %d dimension "
         "keys, 3-shard ZippyDB, %d events at a nominal %d events/s)\n\n",
         kContributionsPerEvent, kDimensionSpace, kTotalEvents,
         kEventsPerSecond);
  printf("  %-10s %-26s %-26s %-8s  remote ops (rmw R/W vs append M)\n",
         "flush", "read-modify-write", "append-only", "gain");

  double min_gain = 1e9;
  double max_gain = 0;
  for (const int interval : {1, 2, 4, 8, 16, 32}) {
    const RunStats rmw = RunOne(RemoteWriteMode::kReadModifyWrite, interval);
    const RunStats app = RunOne(RemoteWriteMode::kAppendOnly, interval);
    const double gain =
        (app.events_per_second / rmw.events_per_second - 1.0) * 100.0;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    printf("  %3ds       %10.0f events/s      %10.0f events/s      +%.0f%%   "
           " %llu/%llu vs %llu\n",
           interval, rmw.events_per_second, app.events_per_second, gain,
           static_cast<unsigned long long>(rmw.remote_reads),
           static_cast<unsigned long long>(rmw.remote_writes),
           static_cast<unsigned long long>(app.remote_merges));
  }
  printf("\n%s\n",
         ReportLine("append-only throughput gain range", "+25% .. +200%",
                    ("+" + std::to_string(static_cast<int>(min_gain)) +
                     "% .. +" + std::to_string(static_cast<int>(max_gain)) +
                     "%"))
             .c_str());
  printf("shape check: gain shrinks as the flush interval grows (in-memory "
         "combining amortizes remote ops).\n");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
