// Tests for the simulated HDFS cluster: namespace, blocks, persistence,
// availability injection, fsimage crash-safety, fault sites.

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/fs.h"
#include "storage/hdfs/hdfs.h"

namespace fbstream::hdfs {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = MakeTempDir("hdfs"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(root_).ok()); }
  std::string root_;
};

TEST_F(HdfsTest, WriteReadRoundTrip) {
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/data/file1", "hello hdfs").ok());
  auto read = hdfs.ReadFile("/data/file1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello hdfs");
  EXPECT_TRUE(hdfs.Exists("/data/file1"));
  EXPECT_FALSE(hdfs.Exists("/data/other"));
}

TEST_F(HdfsTest, LargeFileSplitsIntoBlocks) {
  HdfsOptions options;
  options.block_bytes = 1024;
  HdfsCluster hdfs(root_, options);
  const std::string data(5000, 'x');
  ASSERT_TRUE(hdfs.WriteFile("/big", data).ok());
  auto info = hdfs.Stat("/big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->length, 5000u);
  EXPECT_EQ(info->num_blocks, 5);
  auto read = hdfs.ReadFile("/big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(HdfsTest, OverwriteReplacesContent) {
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/f", "v1").ok());
  ASSERT_TRUE(hdfs.WriteFile("/f", "v2-longer").ok());
  auto read = hdfs.ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2-longer");
}

TEST_F(HdfsTest, DeleteRemoves) {
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/f", "v").ok());
  ASSERT_TRUE(hdfs.DeleteFile("/f").ok());
  EXPECT_FALSE(hdfs.Exists("/f"));
  EXPECT_TRUE(hdfs.ReadFile("/f").status().IsNotFound());
  EXPECT_TRUE(hdfs.DeleteFile("/f").IsNotFound());
}

TEST_F(HdfsTest, ListFilesUnderDirectory) {
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/backup/app/a.sst", "1").ok());
  ASSERT_TRUE(hdfs.WriteFile("/backup/app/MANIFEST", "2").ok());
  ASSERT_TRUE(hdfs.WriteFile("/other/x", "3").ok());
  auto names = hdfs.ListFiles("/backup/app");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "MANIFEST");
  EXPECT_EQ((*names)[1], "a.sst");
}

TEST_F(HdfsTest, UnavailableFailsEverythingThenRecovers) {
  // §4.4.2: "HDFS ... is not intended to be an always-available system."
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/f", "v").ok());
  hdfs.SetAvailable(false);
  EXPECT_TRUE(hdfs.WriteFile("/g", "x").IsUnavailable());
  EXPECT_TRUE(hdfs.ReadFile("/f").status().IsUnavailable());
  EXPECT_TRUE(hdfs.ListFiles("/").status().IsUnavailable());
  EXPECT_FALSE(hdfs.Exists("/f"));
  hdfs.SetAvailable(true);
  auto read = hdfs.ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v");
}

TEST_F(HdfsTest, NamespaceSurvivesRestart) {
  {
    HdfsCluster hdfs(root_);
    ASSERT_TRUE(hdfs.WriteFile("/persist/me", "durable-data").ok());
  }
  HdfsCluster hdfs(root_);
  auto read = hdfs.ReadFile("/persist/me");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "durable-data");
}

TEST_F(HdfsTest, UsedBytesTracksContent) {
  HdfsCluster hdfs(root_);
  EXPECT_EQ(hdfs.UsedBytes(), 0u);
  ASSERT_TRUE(hdfs.WriteFile("/a", std::string(100, 'a')).ok());
  ASSERT_TRUE(hdfs.WriteFile("/b", std::string(50, 'b')).ok());
  EXPECT_EQ(hdfs.UsedBytes(), 150u);
  ASSERT_TRUE(hdfs.DeleteFile("/a").ok());
  EXPECT_EQ(hdfs.UsedBytes(), 50u);
}

TEST_F(HdfsTest, EmptyFileIsValid) {
  HdfsCluster hdfs(root_);
  ASSERT_TRUE(hdfs.WriteFile("/empty", "").ok());
  auto read = hdfs.ReadFile("/empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(HdfsTest, StaleFsimageTmpIsIgnoredAndCleaned) {
  {
    HdfsCluster hdfs(root_);
    ASSERT_TRUE(hdfs.WriteFile("/keep/me", "good").ok());
  }
  // Simulate a crash between the temp write and the rename: a torn tmp file
  // next to the committed image. Recovery must consult only the image.
  ASSERT_TRUE(WriteFile(root_ + "/fsimage.tmp", "torn garbage \xff\x01").ok());
  HdfsCluster hdfs(root_);
  auto read = hdfs.ReadFile("/keep/me");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "good");
  EXPECT_FALSE(FileExists(root_ + "/fsimage.tmp"));
  // And the next persisted namespace still round-trips.
  ASSERT_TRUE(hdfs.WriteFile("/keep/more", "v").ok());
  HdfsCluster again(root_);
  EXPECT_TRUE(again.Exists("/keep/me"));
  EXPECT_TRUE(again.Exists("/keep/more"));
}

TEST_F(HdfsTest, WriteFaultSiteInjectsFailure) {
  FaultRegistry::Global()->Reset();
  HdfsCluster hdfs(root_);
  FaultRegistry::Global()->FailNext("hdfs.write");
  EXPECT_TRUE(hdfs.WriteFile("/f", "v").IsUnavailable());
  ASSERT_TRUE(hdfs.WriteFile("/f", "v").ok());  // One-shot: next succeeds.
  FaultRegistry::Global()->FailNext("hdfs.read");
  EXPECT_TRUE(hdfs.ReadFile("/f").status().IsUnavailable());
  auto read = hdfs.ReadFile("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v");
  FaultRegistry::Global()->Reset();
}

}  // namespace
}  // namespace fbstream::hdfs
