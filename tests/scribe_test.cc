// Tests for the Scribe message bus: categories/buckets, offsets and replay,
// reader decoupling, sharding, retention, delivery latency, persistence,
// torn-tail recovery, append retries, and dynamic re-bucketing.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/fault.h"
#include "common/fs.h"
#include "scribe/scribe.h"

namespace fbstream::scribe {
namespace {

class ScribeTest : public ::testing::Test {
 protected:
  SimClock clock_{1'000'000};
  Scribe scribe_{&clock_};

  void MakeCategory(const std::string& name, int buckets = 1,
                    Micros latency = 0) {
    CategoryConfig config;
    config.name = name;
    config.num_buckets = buckets;
    config.delivery_latency_micros = latency;
    ASSERT_TRUE(scribe_.CreateCategory(config).ok());
  }
};

TEST_F(ScribeTest, CreateRejectsDuplicatesAndBadConfigs) {
  MakeCategory("events");
  CategoryConfig dup;
  dup.name = "events";
  EXPECT_EQ(scribe_.CreateCategory(dup).code(), StatusCode::kAlreadyExists);

  CategoryConfig empty_name;
  EXPECT_FALSE(scribe_.CreateCategory(empty_name).ok());

  CategoryConfig zero_buckets;
  zero_buckets.name = "zb";
  zero_buckets.num_buckets = 0;
  EXPECT_FALSE(scribe_.CreateCategory(zero_buckets).ok());
}

TEST_F(ScribeTest, WriteReadRoundTrip) {
  MakeCategory("events");
  ASSERT_TRUE(scribe_.Write("events", 0, "m0").ok());
  ASSERT_TRUE(scribe_.Write("events", 0, "m1").ok());
  auto messages = scribe_.Read("events", 0, 0, 100);
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages->size(), 2u);
  EXPECT_EQ((*messages)[0].payload, "m0");
  EXPECT_EQ((*messages)[0].sequence, 0u);
  EXPECT_EQ((*messages)[1].payload, "m1");
  EXPECT_EQ((*messages)[1].sequence, 1u);
}

TEST_F(ScribeTest, WriteToUnknownCategoryFails) {
  EXPECT_TRUE(scribe_.Write("nope", 0, "m").IsNotFound());
}

TEST_F(ScribeTest, WriteToBadBucketFails) {
  MakeCategory("events", 2);
  EXPECT_FALSE(scribe_.Write("events", 5, "m").ok());
  EXPECT_FALSE(scribe_.Write("events", -1, "m").ok());
}

TEST_F(ScribeTest, IndependentReadersSeeSameData) {
  // Paper §4.2: a persistent store allows the same data to be read multiple
  // times by independent readers.
  MakeCategory("events");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(scribe_.Write("events", 0, "m" + std::to_string(i)).ok());
  }
  Tailer r1(&scribe_, "events", 0);
  Tailer r2(&scribe_, "events", 0);
  EXPECT_EQ(r1.Poll().size(), 10u);
  EXPECT_EQ(r2.Poll().size(), 10u);  // r1 consuming did not affect r2.
}

TEST_F(ScribeTest, TailerResumesFromOffset) {
  MakeCategory("events");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scribe_.Write("events", 0, std::to_string(i)).ok());
  }
  Tailer tailer(&scribe_, "events", 0);
  auto batch1 = tailer.Poll(3);
  ASSERT_EQ(batch1.size(), 3u);
  EXPECT_EQ(tailer.offset(), 3u);

  // A new tailer built from the persisted offset resumes exactly.
  Tailer resumed(&scribe_, "events", 0, tailer.offset());
  auto batch2 = resumed.Poll();
  ASSERT_EQ(batch2.size(), 2u);
  EXPECT_EQ(batch2[0].payload, "3");
}

TEST_F(ScribeTest, ReplayAfterSeek) {
  // Debugging story (§6.2): "we can replay a stream from a given (recent)
  // time period".
  MakeCategory("events");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scribe_.Write("events", 0, std::to_string(i)).ok());
  }
  Tailer tailer(&scribe_, "events", 0);
  EXPECT_EQ(tailer.Poll().size(), 5u);
  tailer.Seek(0);
  EXPECT_EQ(tailer.Poll().size(), 5u);  // Full replay.
}

TEST_F(ScribeTest, ShardedWritesSpreadAndAreSticky) {
  MakeCategory("events", 4);
  // Same key always lands in the same bucket.
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_TRUE(scribe_.WriteSharded("events", "dim42", "x").ok());
  }
  int buckets_with_data = 0;
  int total = 0;
  for (int b = 0; b < 4; ++b) {
    auto msgs = scribe_.Read("events", b, 0, 100);
    ASSERT_TRUE(msgs.ok());
    if (!msgs->empty()) {
      ++buckets_with_data;
      total += static_cast<int>(msgs->size());
    }
  }
  EXPECT_EQ(buckets_with_data, 1);
  EXPECT_EQ(total, 3);

  // Many distinct keys hit every bucket.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        scribe_.WriteSharded("events", "key" + std::to_string(i), "y").ok());
  }
  int nonempty = 0;
  for (int b = 0; b < 4; ++b) {
    auto msgs = scribe_.Read("events", b, 0, 1000);
    ASSERT_TRUE(msgs.ok());
    if (!msgs->empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4);
}

TEST_F(ScribeTest, DeliveryLatencyHidesFreshMessages) {
  // Models "Using Scribe imposes a minimum latency of about a second per
  // stream" (§4.2.2).
  MakeCategory("slow", 1, kMicrosPerSecond);
  ASSERT_TRUE(scribe_.Write("slow", 0, "m").ok());
  auto hidden = scribe_.Read("slow", 0, 0, 10);
  ASSERT_TRUE(hidden.ok());
  EXPECT_TRUE(hidden->empty());

  clock_.AdvanceMicros(kMicrosPerSecond);
  auto visible = scribe_.Read("slow", 0, 0, 10);
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible->size(), 1u);
}

TEST_F(ScribeTest, RetentionTrimsOldMessages) {
  CategoryConfig config;
  config.name = "short";
  config.retention_micros = 10 * kMicrosPerSecond;
  ASSERT_TRUE(scribe_.CreateCategory(config).ok());
  ASSERT_TRUE(scribe_.Write("short", 0, "old").ok());
  clock_.AdvanceMicros(20 * kMicrosPerSecond);
  ASSERT_TRUE(scribe_.Write("short", 0, "new").ok());
  scribe_.TrimExpired();

  // A reader starting from 0 resumes at the oldest retained message.
  auto msgs = scribe_.Read("short", 0, 0, 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 1u);
  EXPECT_EQ((*msgs)[0].payload, "new");
  EXPECT_EQ((*msgs)[0].sequence, 1u);  // Sequences are never reused.
}

TEST_F(ScribeTest, RebucketingGrowsCategory) {
  MakeCategory("events", 2);
  EXPECT_EQ(scribe_.NumBuckets("events"), 2);
  ASSERT_TRUE(scribe_.SetNumBuckets("events", 8).ok());
  EXPECT_EQ(scribe_.NumBuckets("events"), 8);
  // New buckets accept writes.
  ASSERT_TRUE(scribe_.Write("events", 7, "m").ok());
  auto msgs = scribe_.Read("events", 7, 0, 10);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(msgs->size(), 1u);
}

TEST_F(ScribeTest, RebucketingShrinkKeepsDrainableData) {
  MakeCategory("events", 4);
  ASSERT_TRUE(scribe_.Write("events", 3, "tail-data").ok());
  ASSERT_TRUE(scribe_.SetNumBuckets("events", 2).ok());
  // Writers no longer route to bucket 3...
  EXPECT_FALSE(scribe_.Write("events", 3, "m").ok());
  // ...but readers can still drain it.
  auto msgs = scribe_.Read("events", 3, 0, 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 1u);
  EXPECT_EQ((*msgs)[0].payload, "tail-data");
}

TEST_F(ScribeTest, LagTracksBacklog) {
  MakeCategory("events");
  Tailer tailer(&scribe_, "events", 0);
  EXPECT_EQ(tailer.LagMessages(), 0u);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(scribe_.Write("events", 0, "m").ok());
  }
  EXPECT_EQ(tailer.LagMessages(), 7u);
  tailer.Poll(3);
  EXPECT_EQ(tailer.LagMessages(), 4u);
  tailer.Poll();
  EXPECT_EQ(tailer.LagMessages(), 0u);
}

TEST_F(ScribeTest, TotalBytesTracksPayloadSizes) {
  MakeCategory("events", 2);
  ASSERT_TRUE(scribe_.Write("events", 0, "12345").ok());
  ASSERT_TRUE(scribe_.Write("events", 1, "123").ok());
  auto bytes = scribe_.TotalBytes("events");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, 8u);
}

TEST(ScribePersistenceTest, SurvivesRestart) {
  const std::string root = MakeTempDir("scribe");
  SimClock clock(5'000'000);
  CategoryConfig config;
  config.name = "durable";
  config.num_buckets = 2;
  config.persist_to_disk = true;
  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    ASSERT_TRUE(scribe.Write("durable", 0, "a").ok());
    ASSERT_TRUE(scribe.Write("durable", 0, "b").ok());
    ASSERT_TRUE(scribe.Write("durable", 1, "c").ok());
  }
  {
    // A new Scribe instance over the same root recovers all messages.
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    auto b0 = scribe.Read("durable", 0, 0, 10);
    ASSERT_TRUE(b0.ok());
    ASSERT_EQ(b0->size(), 2u);
    EXPECT_EQ((*b0)[0].payload, "a");
    EXPECT_EQ((*b0)[1].payload, "b");
    auto b1 = scribe.Read("durable", 1, 0, 10);
    ASSERT_TRUE(b1.ok());
    ASSERT_EQ(b1->size(), 1u);
    // Appends after recovery continue the sequence.
    ASSERT_TRUE(scribe.Write("durable", 0, "d").ok());
    auto again = scribe.Read("durable", 0, 0, 10);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->size(), 3u);
    EXPECT_EQ((*again)[2].sequence, 2u);
  }
  ASSERT_TRUE(RemoveAll(root).ok());
}

TEST(ScribePersistenceTest, RequiresRootDir) {
  SimClock clock;
  Scribe scribe(&clock);  // No root.
  CategoryConfig config;
  config.name = "durable";
  config.persist_to_disk = true;
  EXPECT_FALSE(scribe.CreateCategory(config).ok());
}

TEST(ScribeConcurrencyTest, ParallelWritersAndReaders) {
  SimClock clock(1);
  Scribe scribe(&clock);
  CategoryConfig config;
  config.name = "hot";
  config.num_buckets = 4;
  ASSERT_TRUE(scribe.CreateCategory(config).ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&scribe, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        scribe.WriteSharded("hot", "k" + std::to_string(w * 100000 + i),
                            "payload");
      }
    });
  }
  for (auto& t : writers) t.join();

  size_t total = 0;
  for (int b = 0; b < 4; ++b) {
    Tailer tailer(&scribe, "hot", b);
    while (true) {
      auto batch = tailer.Poll(512);
      if (batch.empty()) break;
      total += batch.size();
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kWriters * kPerWriter));
}


TEST(ScribeSegmentTest, RotatesAndTrimsOnDisk) {
  const std::string root = MakeTempDir("scribe_seg");
  SimClock clock(1'000'000);
  CategoryConfig config;
  config.name = "seg";
  config.persist_to_disk = true;
  config.retention_micros = 10 * kMicrosPerSecond;
  Scribe scribe(&clock, root);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());

  // Fill more than two segments worth of messages.
  const size_t total = Bucket::kSegmentMessages * 2 + 100;
  for (size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(scribe.Write("seg", 0, "m" + std::to_string(i)).ok());
  }
  auto files = ListDir(root + "/seg/bucket-0");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 3u);  // Two sealed + one active segment.

  // Age everything out and trim: sealed segments disappear from disk, the
  // active one stays.
  clock.AdvanceMicros(100 * kMicrosPerSecond);
  scribe.TrimExpired();
  files = ListDir(root + "/seg/bucket-0");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);

  // Readers resume at the retained head; sequences keep counting.
  ASSERT_TRUE(scribe.Write("seg", 0, "fresh").ok());
  auto msgs = scribe.Read("seg", 0, 0, 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 1u);
  EXPECT_EQ((*msgs)[0].payload, "fresh");
  EXPECT_EQ((*msgs)[0].sequence, total);
  ASSERT_TRUE(RemoveAll(root).ok());
}

TEST(ScribeSegmentTest, RecoveryAcrossSegments) {
  const std::string root = MakeTempDir("scribe_seg2");
  SimClock clock(1);
  CategoryConfig config;
  config.name = "seg";
  config.persist_to_disk = true;
  const size_t total = Bucket::kSegmentMessages + 10;
  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    for (size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(scribe.Write("seg", 0, std::to_string(i)).ok());
    }
  }
  Scribe scribe(&clock, root);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  Tailer tailer(&scribe, "seg", 0);
  size_t read = 0;
  std::string last;
  while (true) {
    auto batch = tailer.Poll(1024);
    if (batch.empty()) break;
    read += batch.size();
    last = batch.back().payload;
  }
  EXPECT_EQ(read, total);
  EXPECT_EQ(last, std::to_string(total - 1));
  ASSERT_TRUE(RemoveAll(root).ok());
}

namespace {
std::vector<std::string> ReadAllPayloads(Scribe* scribe) {
  Tailer tailer(scribe, "seg", 0);
  std::vector<std::string> payloads;
  while (true) {
    auto batch = tailer.Poll(1024);
    if (batch.empty()) break;
    for (auto& m : batch) payloads.push_back(m.payload);
  }
  return payloads;
}
}  // namespace

TEST(ScribeCorruptionTest, TornTailTruncatedAndAppendsContinue) {
  const std::string root = MakeTempDir("scribe_torn");
  SimClock clock(1);
  CategoryConfig config;
  config.name = "seg";
  config.persist_to_disk = true;
  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(scribe.Write("seg", 0, "m" + std::to_string(i)).ok());
    }
  }
  // Tear the tail: drop the last 3 bytes of the active segment, as a crash
  // mid-append would.
  const std::string segment = root + "/seg/bucket-0/segment-000000000000.log";
  auto data = ReadFileToString(segment);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFile(segment, data->substr(0, data->size() - 3)).ok());

  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    // The intact prefix survives; the torn record is gone.
    EXPECT_EQ(ReadAllPayloads(&scribe),
              (std::vector<std::string>{"m0", "m1", "m2", "m3"}));
    // The file was truncated back to a record boundary, so a new append
    // lands cleanly and takes the torn record's sequence number.
    ASSERT_TRUE(scribe.Write("seg", 0, "m4-again").ok());
    auto msgs = scribe.Read("seg", 0, 4, 10);
    ASSERT_TRUE(msgs.ok());
    ASSERT_EQ(msgs->size(), 1u);
    EXPECT_EQ((*msgs)[0].sequence, 4u);
  }
  // A second restart sees a fully clean log.
  Scribe scribe(&clock, root);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  EXPECT_EQ(ReadAllPayloads(&scribe),
            (std::vector<std::string>{"m0", "m1", "m2", "m3", "m4-again"}));
  ASSERT_TRUE(RemoveAll(root).ok());
}

TEST(ScribeCorruptionTest, BitFlipDetectedByChecksum) {
  const std::string root = MakeTempDir("scribe_flip");
  SimClock clock(1);
  CategoryConfig config;
  config.name = "seg";
  config.persist_to_disk = true;
  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(scribe.Write("seg", 0, "payload-" + std::to_string(i)).ok());
    }
  }
  // Flip one bit inside the last record's body (bit rot): the length
  // prefix still parses, but the checksum must catch it.
  const std::string segment = root + "/seg/bucket-0/segment-000000000000.log";
  auto data = ReadFileToString(segment);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x40);
  ASSERT_TRUE(WriteFile(segment, bytes).ok());

  Scribe scribe(&clock, root);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  EXPECT_EQ(ReadAllPayloads(&scribe),
            (std::vector<std::string>{"payload-0", "payload-1"}));
  ASSERT_TRUE(RemoveAll(root).ok());
}

TEST(ScribeCorruptionTest, CorruptionDropsLaterSegments) {
  const std::string root = MakeTempDir("scribe_multi");
  SimClock clock(1);
  CategoryConfig config;
  config.name = "seg";
  config.persist_to_disk = true;
  const size_t total = Bucket::kSegmentMessages + 5;  // Two segments.
  {
    Scribe scribe(&clock, root);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    for (size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(scribe.Write("seg", 0, std::to_string(i)).ok());
    }
  }
  auto files = ListDir(root + "/seg/bucket-0");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  // Corrupt the tail of the *first* segment: its suffix and the entire
  // second segment are untrusted (contiguous sequences would break).
  const std::string first_segment = root + "/seg/bucket-0/" + (*files)[0];
  auto data = ReadFileToString(first_segment);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteFile(first_segment, data->substr(0, data->size() - 1)).ok());

  Scribe scribe(&clock, root);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  const std::vector<std::string> payloads = ReadAllPayloads(&scribe);
  EXPECT_EQ(payloads.size(), Bucket::kSegmentMessages - 1);
  EXPECT_EQ(payloads.back(),
            std::to_string(Bucket::kSegmentMessages - 2));
  files = ListDir(root + "/seg/bucket-0");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);  // Post-corruption segment deleted.
  ASSERT_TRUE(RemoveAll(root).ok());
}

TEST(ScribeRetryTest, TransientAppendFaultIsRetried) {
  FaultRegistry::Global()->Reset();
  SimClock clock(1);
  Scribe scribe(&clock);
  CategoryConfig config;
  config.name = "flaky";
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  FaultRegistry::Global()->FailNext("scribe.append");
  ASSERT_TRUE(scribe.Write("flaky", 0, "survives").ok());
  EXPECT_GE(scribe.retry_stats().retries, 1u);
  EXPECT_EQ(scribe.retry_stats().exhausted, 0u);
  auto msgs = scribe.Read("flaky", 0, 0, 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 1u);
  EXPECT_EQ((*msgs)[0].payload, "survives");
  FaultRegistry::Global()->Reset();
}

TEST(ScribeRetryTest, PersistentAppendFaultExhaustsBudget) {
  FaultRegistry::Global()->Reset();
  SimClock clock(1);
  Scribe scribe(&clock);
  CategoryConfig config;
  config.name = "down";
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  // Outlast the default 3-attempt budget.
  FaultRegistry::Global()->FailNext("scribe.append",
                                    StatusCode::kUnavailable,
                                    /*count=*/100);
  const Status st = scribe.Write("down", 0, "lost");
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_NE(st.message().find("failed after"), std::string::npos);
  EXPECT_GE(scribe.retry_stats().exhausted, 1u);
  // Nothing was appended: the fault fires before the bucket mutates.
  auto msgs = scribe.Read("down", 0, 0, 10);
  ASSERT_TRUE(msgs.ok());
  EXPECT_TRUE(msgs->empty());
  FaultRegistry::Global()->Reset();
}

}  // namespace
}  // namespace fbstream::scribe
