// Tests for continuous push-based execution (Pipeline::Start/Stop):
//  - differential equivalence against the round loop in every semantics
//    mode — byte-identical per-shard outputs, checkpoint counts, offsets,
//    and checkpoint-store contents;
//  - backpressure: a slow sink bounds every inter-node queue and stalls the
//    source tailer without losing events;
//  - graceful shutdown (WaitUntilQuiescent returns Cancelled, loops pause,
//    a restarted engine finishes the backlog);
//  - offsets-snapshot write-failure accounting and the monitoring alert;
//  - shard reconciliation while the engine is running;
//  - dead consumers excluded from the backpressure lag scan (failure
//    independence over backpressure);
//  - Stop() racing ReconcileShards and lag scans (join-outside-lock
//    deadlock regression).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "common/shutdown.h"
#include "core/monitoring.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "storage/lsm/db.h"

namespace fbstream::stylus {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"id", ValueType::kInt64}, {"topic", ValueType::kString}});
}

// Emits one row per event (boundary-independent output) while keeping a
// count in checkpointed state, so both the output multiset and the final
// state are comparable across execution modes.
class CountingEmitProcessor : public StatefulProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    ++count_;
    out->push_back(event.row);
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* /*out*/) override {}
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class PassthroughProcessor : public StatelessProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    out->push_back(event.row);
  }
};

// Transactional sink for exactly-once: rows become "out/<id>" keys committed
// atomically with the checkpoint into the shard's own store.
class LsmOutputSink : public OutputSink {
 public:
  Status Emit(const Row& /*row*/) override {
    return Status::FailedPrecondition("transactional sink: use checkpoint");
  }
  bool SupportsTransactions() const override { return true; }
  Status AppendToTransaction(const std::vector<Row>& rows,
                             lsm::WriteBatch* batch) override {
    for (const Row& row : rows) {
      batch->Put("out/" + std::to_string(row.Get("id").CoerceInt64()),
                 row.Get("topic").ToString());
    }
    return Status::OK();
  }
};

// Thread-safe collecting sink with a configurable per-row delay — the "slow
// consumer" for backpressure tests.
class SlowSink : public OutputSink {
 public:
  explicit SlowSink(int delay_micros) : delay_micros_(delay_micros) {}
  Status Emit(const Row& row) override {
    if (delay_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    }
    std::lock_guard<std::mutex> lock(mu_);
    ids_.push_back(row.Get("id").CoerceInt64());
    return Status::OK();
  }
  std::vector<int64_t> ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_.size();
  }

 private:
  const int delay_micros_;
  mutable std::mutex mu_;
  std::vector<int64_t> ids_;
};

constexpr int kBuckets = 4;

void PreloadInput(scribe::Scribe* scribe, int events, int64_t first_id = 0) {
  TextRowCodec codec(EventSchema());
  for (int64_t i = first_id; i < first_id + events; ++i) {
    Row row(EventSchema(), {Value(i), Value("t" + std::to_string(i % 3))});
    ASSERT_TRUE(
        scribe->Write("in", static_cast<int>(i % kBuckets), codec.Encode(row))
            .ok());
  }
}

// Everything observable from one run of the single-node semantics workload.
struct ModeResult {
  size_t processed = 0;
  std::vector<uint64_t> checkpoints;
  std::vector<uint64_t> offsets;
  std::vector<int64_t> emitted_ids;  // Sorted; empty for exactly-once.
  // Full per-shard checkpoint-store dumps (state, offset, EO output keys),
  // taken after the pipeline closed its stores.
  std::vector<std::map<std::string, std::string>> dumps;
};

ModeResult RunSemanticsWorkload(bool continuous, StateSemantics state,
                                OutputSemantics output,
                                const std::string& tag) {
  const std::string dir = MakeTempDir("continuous_diff_" + tag);
  ModeResult result;
  {
    SimClock clock(1'000'000);
    scribe::Scribe scribe(&clock);
    scribe::CategoryConfig in;
    in.name = "in";
    in.num_buckets = kBuckets;
    EXPECT_TRUE(scribe.CreateCategory(in).ok());
    PreloadInput(&scribe, 600);

    Pipeline::Options options;
    options.overlap_commits = true;
    options.commit_threads = 2;
    options.idle_sleep_micros = 100;
    Pipeline pipeline(&scribe, &clock, options);

    auto collected = std::make_shared<CollectingSink>();
    NodeConfig config;
    config.name = "tally";
    config.input_category = "in";
    config.input_schema = EventSchema();
    config.stateful_factory = [] {
      return std::make_unique<CountingEmitProcessor>();
    };
    config.state_semantics = state;
    config.output_semantics = output;
    config.checkpoint_every_events = 32;
    config.backend = StateBackend::kLocal;
    config.state_dir = dir + "/state";
    if (output == OutputSemantics::kExactlyOnce) {
      config.sink = std::make_shared<LsmOutputSink>();
    } else {
      config.sink = collected;
    }
    EXPECT_TRUE(pipeline.AddNode(config).ok());

    if (continuous) {
      EXPECT_TRUE(pipeline.Start().ok()) << "Start failed";
      auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/30'000);
      EXPECT_TRUE(drained.ok()) << drained.status();
      if (drained.ok()) result.processed = drained.value();
      EXPECT_TRUE(pipeline.Stop().ok());
    } else {
      auto drained = pipeline.RunUntilQuiescent();
      EXPECT_TRUE(drained.ok()) << drained.status();
      if (drained.ok()) result.processed = drained.value();
    }

    for (NodeShard* shard : pipeline.Shards("tally")) {
      result.checkpoints.push_back(shard->checkpoints_completed());
      result.offsets.push_back(shard->TailerOffset());
      EXPECT_EQ(shard->ProcessingLag(), 0u);
    }
    for (const Row& row : collected->rows()) {
      result.emitted_ids.push_back(row.Get("id").CoerceInt64());
    }
    std::sort(result.emitted_ids.begin(), result.emitted_ids.end());
  }
  // The pipeline is gone, stores are closed: dump every shard's checkpoint
  // database byte for byte.
  for (int b = 0; b < kBuckets; ++b) {
    std::map<std::string, std::string> dump;
    auto db = lsm::Db::Open(lsm::DbOptions{},
                            dir + "/state/tally/shard-" + std::to_string(b));
    EXPECT_TRUE(db.ok()) << db.status();
    if (db.ok()) {
      auto it = (*db)->NewIterator();
      for (it.SeekToFirst(); it.Valid(); it.Next()) dump[it.key()] = it.value();
    }
    result.dumps.push_back(std::move(dump));
  }
  EXPECT_TRUE(RemoveAll(dir).ok());
  return result;
}

void ExpectSameRun(const ModeResult& continuous, const ModeResult& rounds) {
  EXPECT_EQ(continuous.processed, rounds.processed);
  EXPECT_EQ(continuous.checkpoints, rounds.checkpoints);
  EXPECT_EQ(continuous.offsets, rounds.offsets);
  EXPECT_EQ(continuous.emitted_ids, rounds.emitted_ids);
  ASSERT_EQ(continuous.dumps.size(), rounds.dumps.size());
  for (size_t b = 0; b < continuous.dumps.size(); ++b) {
    EXPECT_EQ(continuous.dumps[b], rounds.dumps[b]) << "shard " << b;
  }
}

TEST(ContinuousDifferentialTest, MatchesRoundLoopAtLeastOnce) {
  ExpectSameRun(RunSemanticsWorkload(true, StateSemantics::kAtLeastOnce,
                                     OutputSemantics::kAtLeastOnce, "alo_c"),
                RunSemanticsWorkload(false, StateSemantics::kAtLeastOnce,
                                     OutputSemantics::kAtLeastOnce, "alo_r"));
}

TEST(ContinuousDifferentialTest, MatchesRoundLoopAtMostOnce) {
  ExpectSameRun(RunSemanticsWorkload(true, StateSemantics::kAtMostOnce,
                                     OutputSemantics::kAtMostOnce, "amo_c"),
                RunSemanticsWorkload(false, StateSemantics::kAtMostOnce,
                                     OutputSemantics::kAtMostOnce, "amo_r"));
}

TEST(ContinuousDifferentialTest, MatchesRoundLoopExactlyOnce) {
  ExpectSameRun(RunSemanticsWorkload(true, StateSemantics::kExactlyOnce,
                                     OutputSemantics::kExactlyOnce, "eo_c"),
                RunSemanticsWorkload(false, StateSemantics::kExactlyOnce,
                                     OutputSemantics::kExactlyOnce, "eo_r"));
}

// Two-node DAG under continuous execution: the downstream node's batch
// boundaries are timing-dependent (it consumes while the upstream produces),
// so the comparison sticks to boundary-independent observables — the output
// multiset, the per-bucket placement of the intermediate stream, and final
// offsets.
TEST(ContinuousDifferentialTest, DagOutputsMatchRoundLoop) {
  auto run = [](bool continuous) {
    SimClock clock(1'000'000);
    scribe::Scribe scribe(&clock);
    scribe::CategoryConfig in;
    in.name = "in";
    in.num_buckets = kBuckets;
    EXPECT_TRUE(scribe.CreateCategory(in).ok());
    scribe::CategoryConfig mid;
    mid.name = "mid";
    mid.num_buckets = kBuckets;
    EXPECT_TRUE(scribe.CreateCategory(mid).ok());
    PreloadInput(&scribe, 800);
    const std::string dir =
        MakeTempDir(std::string("continuous_dag_") + (continuous ? "c" : "r"));

    Pipeline::Options options;
    options.commit_threads = 2;
    options.idle_sleep_micros = 100;
    Pipeline pipeline(&scribe, &clock, options);

    NodeConfig gen;
    gen.name = "gen";
    gen.input_category = "in";
    gen.input_schema = EventSchema();
    gen.stateless_factory = [] {
      return std::make_unique<PassthroughProcessor>();
    };
    gen.backend = StateBackend::kNone;
    gen.state_dir = dir + "/gen";
    gen.checkpoint_every_events = 32;
    gen.sink = std::make_shared<ScribeSink>(&scribe, "mid", EventSchema(),
                                            std::vector<std::string>{"id"});
    EXPECT_TRUE(pipeline.AddNode(gen).ok());

    auto collected = std::make_shared<CollectingSink>();
    NodeConfig agg;
    agg.name = "agg";
    agg.input_category = "mid";
    agg.input_schema = EventSchema();
    agg.stateful_factory = [] {
      return std::make_unique<CountingEmitProcessor>();
    };
    agg.state_semantics = StateSemantics::kAtLeastOnce;
    agg.output_semantics = OutputSemantics::kAtLeastOnce;
    agg.backend = StateBackend::kLocal;
    agg.state_dir = dir + "/agg";
    agg.checkpoint_every_events = 32;
    agg.sink = collected;
    EXPECT_TRUE(pipeline.AddNode(agg).ok());

    if (continuous) {
      EXPECT_TRUE(pipeline.Start().ok());
      auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/30'000);
      EXPECT_TRUE(drained.ok()) << drained.status();
      EXPECT_TRUE(pipeline.Stop().ok());
    } else {
      auto drained = pipeline.RunUntilQuiescent();
      EXPECT_TRUE(drained.ok()) << drained.status();
    }

    std::vector<int64_t> ids;
    for (const Row& row : collected->rows()) {
      ids.push_back(row.Get("id").CoerceInt64());
    }
    std::sort(ids.begin(), ids.end());
    std::vector<uint64_t> mid_placement;
    for (int b = 0; b < kBuckets; ++b) {
      auto next = scribe.NextSequence("mid", b);
      EXPECT_TRUE(next.ok());
      mid_placement.push_back(next.ok() ? next.value() : 0);
    }
    std::vector<uint64_t> offsets;
    for (const char* node : {"gen", "agg"}) {
      for (NodeShard* shard : pipeline.Shards(node)) {
        offsets.push_back(shard->TailerOffset());
        EXPECT_EQ(shard->ProcessingLag(), 0u) << node;
      }
    }
    EXPECT_TRUE(RemoveAll(dir).ok());
    return std::make_tuple(ids, mid_placement, offsets);
  };

  const auto continuous = run(true);
  const auto rounds = run(false);
  EXPECT_EQ(std::get<0>(continuous), std::get<0>(rounds));
  EXPECT_EQ(std::get<1>(continuous), std::get<1>(rounds));
  EXPECT_EQ(std::get<2>(continuous), std::get<2>(rounds));
}

// Slow-sink soak: with a bounded edge, the source must stall instead of
// letting the intermediate backlog grow with input size, and nothing may be
// lost. The lag bound is max_queue_messages plus one in-flight batch per
// producer shard (each producer checks the edge before polling a batch).
TEST(ContinuousBackpressureTest, SlowSinkBoundsQueueAndLosesNothing) {
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = kBuckets;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  scribe::CategoryConfig mid;
  mid.name = "mid";
  mid.num_buckets = kBuckets;
  ASSERT_TRUE(scribe.CreateCategory(mid).ok());
  const int kEvents = 2000;
  PreloadInput(&scribe, kEvents);
  const std::string dir = MakeTempDir("continuous_backpressure");

  Pipeline::Options options;
  options.max_queue_messages = 64;
  options.commit_threads = 2;
  options.idle_sleep_micros = 100;
  Pipeline pipeline(&scribe, &clock, options);

  NodeConfig gen;
  gen.name = "gen";
  gen.input_category = "in";
  gen.input_schema = EventSchema();
  gen.stateless_factory = [] { return std::make_unique<PassthroughProcessor>(); };
  gen.backend = StateBackend::kNone;
  gen.state_dir = dir + "/gen";
  gen.checkpoint_every_events = 32;
  gen.sink = std::make_shared<ScribeSink>(&scribe, "mid", EventSchema(),
                                          std::vector<std::string>{"id"});
  ASSERT_TRUE(pipeline.AddNode(gen).ok());

  auto slow = std::make_shared<SlowSink>(/*delay_micros=*/150);
  NodeConfig sinknode;
  sinknode.name = "slow";
  sinknode.input_category = "mid";
  sinknode.input_schema = EventSchema();
  sinknode.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  sinknode.backend = StateBackend::kNone;
  sinknode.state_dir = dir + "/slow";
  sinknode.checkpoint_every_events = 32;
  sinknode.sink = slow;
  ASSERT_TRUE(pipeline.AddNode(sinknode).ok());

  ASSERT_TRUE(pipeline.Start().ok());
  // Sample the intermediate edge's backlog while the slow consumer works
  // through it.
  uint64_t max_mid_lag = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (slow->size() < static_cast<size_t>(kEvents) &&
         std::chrono::steady_clock::now() < deadline) {
    for (const auto& report : pipeline.GetProcessingLag()) {
      if (report.node == "slow") {
        max_mid_lag = std::max(max_mid_lag, report.lag_messages);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/60'000);
  ASSERT_TRUE(drained.ok()) << drained.status();
  ASSERT_TRUE(pipeline.Stop().ok());

  // Bounded: far below the kEvents the edge would hold without backpressure.
  const uint64_t bound =
      options.max_queue_messages + kBuckets * gen.checkpoint_every_events;
  EXPECT_LE(max_mid_lag, bound);
  // The source actually stalled (the edge filled at least once)...
  uint64_t stalls = 0;
  for (int b = 0; b < kBuckets; ++b) {
    stalls += MetricsRegistry::Global()
                  ->GetCounter("stylus.continuous.backpressure_stalls", "gen", b)
                  ->value();
  }
  EXPECT_GT(stalls, 0u);
  // ...and no event was lost or invented.
  std::vector<int64_t> ids = slow->ids();
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), static_cast<size_t>(kEvents));
  for (int64_t i = 0; i < kEvents; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// A crashed downstream shard must not stall its upstream: the lag scan
// skips dead consumers (failure independence, §4.2.2, wins over
// backpressure — the backlog lands in the durable bus, not in memory).
// Regression: counting dead shards' lag froze every upstream loop back to
// the source once the dead shard's backlog crossed max_queue_messages.
TEST(ContinuousBackpressureTest, DeadConsumerDoesNotStallUpstream) {
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = kBuckets;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  scribe::CategoryConfig mid;
  mid.name = "mid";
  mid.num_buckets = kBuckets;
  ASSERT_TRUE(scribe.CreateCategory(mid).ok());
  const int kEvents = 1000;
  PreloadInput(&scribe, kEvents);
  const std::string dir = MakeTempDir("continuous_dead_consumer");

  Pipeline::Options options;
  options.max_queue_messages = 32;  // Far below kEvents.
  options.commit_threads = 2;
  options.idle_sleep_micros = 100;
  Pipeline pipeline(&scribe, &clock, options);

  NodeConfig gen;
  gen.name = "gen";
  gen.input_category = "in";
  gen.input_schema = EventSchema();
  gen.stateless_factory = [] { return std::make_unique<PassthroughProcessor>(); };
  gen.backend = StateBackend::kNone;
  gen.state_dir = dir + "/gen";
  gen.checkpoint_every_events = 32;
  gen.sink = std::make_shared<ScribeSink>(&scribe, "mid", EventSchema(),
                                          std::vector<std::string>{"id"});
  ASSERT_TRUE(pipeline.AddNode(gen).ok());

  auto collected = std::make_shared<CollectingSink>();
  NodeConfig sinknode;
  sinknode.name = "slow";
  sinknode.input_category = "mid";
  sinknode.input_schema = EventSchema();
  sinknode.stateful_factory = [] {
    return std::make_unique<CountingEmitProcessor>();
  };
  sinknode.state_semantics = StateSemantics::kExactlyOnce;
  sinknode.output_semantics = OutputSemantics::kAtLeastOnce;
  sinknode.backend = StateBackend::kLocal;
  sinknode.state_dir = dir + "/slow";
  sinknode.checkpoint_every_events = 16;
  sinknode.sink = collected;
  ASSERT_TRUE(pipeline.AddNode(sinknode).ok());

  // Every consumer shard dies on its own first batch (crashes must fire on
  // the shard's loop thread, never from the test thread).
  auto crashed_once = std::make_shared<std::array<std::atomic<bool>, kBuckets>>();
  for (NodeShard* shard : pipeline.Shards("slow")) {
    std::atomic<bool>* flag = &(*crashed_once)[shard->bucket()];
    shard->SetFailureInjector([flag](FailurePoint point) {
      return point == FailurePoint::kAfterProcessing &&
             !flag->exchange(true, std::memory_order_acq_rel);
    });
  }

  ASSERT_TRUE(pipeline.Start().ok());
  // Quiescence skips dead shards, so this only returns once "gen" pushed the
  // whole input into "mid" — which requires the lag scan to ignore the dead
  // consumers sitting on a backlog far above max_queue_messages.
  auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/60'000);
  ASSERT_TRUE(drained.ok()) << drained.status();
  uint64_t dead_backlog = 0;
  int dead_shards = 0;
  for (const auto& report : pipeline.GetProcessingLag()) {
    if (report.node == "slow") {
      dead_backlog += report.lag_messages;
      if (!pipeline.Shard("slow", report.shard)->alive()) ++dead_shards;
    }
  }
  EXPECT_EQ(dead_shards, kBuckets);
  EXPECT_GT(dead_backlog, options.max_queue_messages);

  // Revival drains the backlog; nothing was lost while the consumers were
  // down (the durable bus held it).
  ASSERT_TRUE(pipeline.RecoverAll().ok());
  drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/60'000);
  ASSERT_TRUE(drained.ok()) << drained.status();
  ASSERT_TRUE(pipeline.Stop().ok());
  std::set<int64_t> ids;
  for (const Row& row : collected->rows()) {
    ids.insert(row.Get("id").CoerceInt64());
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kEvents));
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// Regression: Stop() used to join the loop threads while holding loops_mu_.
// A loop blocked on mu_ (lag scan or offsets snapshot) while a concurrent
// ReconcileShards — explicitly allowed by the thread-safety contract —
// held mu_ and waited on loops_mu_ deadlocked the trio. Hammer the three
// paths against each other; pre-fix this hangs.
TEST(ContinuousStopTest, StopRacesReconcileAndLagScans) {
  for (int iter = 0; iter < 8; ++iter) {
    SimClock clock(1'000'000);
    scribe::Scribe scribe(&clock);
    scribe::CategoryConfig in;
    in.name = "in";
    in.num_buckets = 2;
    ASSERT_TRUE(scribe.CreateCategory(in).ok());
    scribe::CategoryConfig mid;
    mid.name = "mid";
    mid.num_buckets = 2;
    ASSERT_TRUE(scribe.CreateCategory(mid).ok());
    {
      TextRowCodec codec(EventSchema());
      for (int64_t i = 0; i < 200; ++i) {
        Row row(EventSchema(), {Value(i), Value("t")});
        ASSERT_TRUE(
            scribe.Write("in", static_cast<int>(i % 2), codec.Encode(row)).ok());
      }
    }
    const std::string dir = MakeTempDir("continuous_stop_race");

    Pipeline::Options options;
    options.commit_threads = 2;
    options.idle_sleep_micros = 20;
    options.snapshot_every_batches = 1;  // Commit threads hit mu_ hard.
    Pipeline pipeline(&scribe, &clock, options);

    NodeConfig gen;
    gen.name = "gen";
    gen.input_category = "in";
    gen.input_schema = EventSchema();
    gen.stateless_factory = [] {
      return std::make_unique<PassthroughProcessor>();
    };
    gen.backend = StateBackend::kNone;
    gen.state_dir = dir + "/gen";
    gen.checkpoint_every_events = 8;
    gen.sink = std::make_shared<ScribeSink>(&scribe, "mid", EventSchema(),
                                            std::vector<std::string>{"id"});
    ASSERT_TRUE(pipeline.AddNode(gen).ok());
    NodeConfig tail;
    tail.name = "tail";
    tail.input_category = "mid";
    tail.input_schema = EventSchema();
    tail.stateless_factory = [] {
      return std::make_unique<PassthroughProcessor>();
    };
    tail.backend = StateBackend::kNone;
    tail.state_dir = dir + "/tail";
    tail.checkpoint_every_events = 8;
    tail.sink = std::make_shared<CollectingSink>();
    ASSERT_TRUE(pipeline.AddNode(tail).ok());
    ASSERT_TRUE(pipeline.EnableManifest(dir).ok());

    ASSERT_TRUE(pipeline.Start().ok());
    std::atomic<bool> quit{false};
    std::thread reconciler([&pipeline, &scribe, &quit] {
      int buckets = 2;
      while (!quit.load(std::memory_order_acquire)) {
        if (buckets < 6) {
          ASSERT_TRUE(scribe.SetNumBuckets("in", ++buckets).ok());
        }
        ASSERT_TRUE(pipeline.ReconcileShards().ok());
        (void)pipeline.GetProcessingLag();
        std::this_thread::yield();
      }
    });
    // Let loops, commit threads, and the reconciler collide, then Stop
    // while the reconciler keeps running.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * (iter + 1)));
    ASSERT_TRUE(pipeline.Stop().ok());
    quit.store(true, std::memory_order_release);
    reconciler.join();
    ASSERT_TRUE(RemoveAll(dir).ok());
  }
}

// A shutdown request pauses every loop (the tailers stop consuming) and
// surfaces as Cancelled — distinct from quiescence — and a restarted engine
// finishes the backlog.
TEST(ContinuousShutdownTest, WaitReturnsCancelledAndRestartFinishesBacklog) {
  ResetShutdown();
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = kBuckets;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  PreloadInput(&scribe, 400);
  const std::string dir = MakeTempDir("continuous_shutdown");

  auto collected = std::make_shared<CollectingSink>();
  Pipeline pipeline(&scribe, &clock, Pipeline::Options{});
  NodeConfig config;
  config.name = "tally";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.stateful_factory = [] {
    return std::make_unique<CountingEmitProcessor>();
  };
  config.state_semantics = StateSemantics::kExactlyOnce;
  config.output_semantics = OutputSemantics::kAtLeastOnce;
  config.checkpoint_every_events = 16;
  config.backend = StateBackend::kLocal;
  config.state_dir = dir + "/state";
  config.sink = collected;
  ASSERT_TRUE(pipeline.AddNode(config).ok());

  // Round-mode API is fenced off while the engine runs.
  ASSERT_TRUE(pipeline.Start().ok());
  EXPECT_TRUE(pipeline.RunRound().status().code() ==
              StatusCode::kFailedPrecondition);

  RequestShutdown();
  auto interrupted = pipeline.WaitUntilQuiescent(/*timeout_ms=*/10'000);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_TRUE(interrupted.status().IsCancelled()) << interrupted.status();
  ASSERT_TRUE(pipeline.Stop().ok());

  // Flag cleared, engine restarted: the backlog drains, each event exactly
  // once (exactly-once state + replay-safe per-event emission dedup check
  // via the id set).
  ResetShutdown();
  ASSERT_TRUE(pipeline.Start().ok());
  auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/30'000);
  ASSERT_TRUE(drained.ok()) << drained.status();
  ASSERT_TRUE(pipeline.Stop().ok());
  std::set<int64_t> ids;
  for (const Row& row : collected->rows()) {
    ids.insert(row.Get("id").CoerceInt64());
  }
  EXPECT_EQ(ids.size(), 400u);
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// Satellite regression: a failing OFFSETS write is counted, tracked as a
// streak, and surfaces as a monitoring alert after N consecutive failures;
// one success clears the streak.
TEST(ContinuousMonitoringTest, OffsetsWriteFailuresRaiseSnapshotAlert) {
  auto* faults = FaultRegistry::Global();
  faults->Reset();
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = 2;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  const std::string dir = MakeTempDir("continuous_snapshot_alert");

  Pipeline pipeline(&scribe, &clock);
  NodeConfig config;
  config.name = "tally";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  config.backend = StateBackend::kNone;
  config.state_dir = dir + "/state";
  config.sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(pipeline.AddNode(config).ok());
  ASSERT_TRUE(pipeline.EnableManifest(dir + "/manifest").ok());

  MonitoringService monitoring(&clock);
  monitoring.RegisterPipeline("svc", &pipeline);

  Counter* failures = MetricsRegistry::Global()->GetCounter(
      "recovery.offsets.write_failures");
  const uint64_t failures_before = failures->value();

  // Every round rewrites OFFSETS; fail the next three writes.
  faults->FailNext("recovery.offsets.write", StatusCode::kIoError, 3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipeline.RunRound().ok());
  }
  EXPECT_EQ(pipeline.OffsetsWriteFailureStreak(), 3u);
  EXPECT_EQ(failures->value(), failures_before + 3);
  auto alerts = monitoring.ActiveSnapshotAlerts(/*threshold=*/3);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].service, "svc");
  EXPECT_EQ(alerts[0].consecutive_failures, 3u);
  // Below threshold: a shorter streak does not page.
  EXPECT_TRUE(monitoring.ActiveSnapshotAlerts(4).empty());

  // The fourth write succeeds and clears the streak (the counter, being an
  // event count, keeps its history).
  ASSERT_TRUE(pipeline.RunRound().ok());
  EXPECT_EQ(pipeline.OffsetsWriteFailureStreak(), 0u);
  EXPECT_TRUE(monitoring.ActiveSnapshotAlerts(1).empty());
  EXPECT_EQ(failures->value(), failures_before + 3);

  faults->Reset();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// Re-bucketing while the engine runs: ReconcileShards gives the new buckets
// event loops immediately (§6.4 scaling without restarting the node).
TEST(ContinuousReconcileTest, NewBucketsGetLoopsWhileRunning) {
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = 2;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  const std::string dir = MakeTempDir("continuous_reconcile");
  TextRowCodec codec(EventSchema());
  for (int64_t i = 0; i < 100; ++i) {
    Row row(EventSchema(), {Value(i), Value("t")});
    ASSERT_TRUE(
        scribe.Write("in", static_cast<int>(i % 2), codec.Encode(row)).ok());
  }

  auto collected = std::make_shared<CollectingSink>();
  Pipeline pipeline(&scribe, &clock, Pipeline::Options{});
  NodeConfig config;
  config.name = "tally";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  config.backend = StateBackend::kNone;
  config.state_dir = dir + "/state";
  config.sink = collected;
  ASSERT_TRUE(pipeline.AddNode(config).ok());

  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(scribe.SetNumBuckets("in", 4).ok());
  for (int64_t i = 100; i < 140; ++i) {
    Row row(EventSchema(), {Value(i), Value("t")});
    ASSERT_TRUE(
        scribe.Write("in", static_cast<int>(2 + i % 2), codec.Encode(row)).ok());
  }
  ASSERT_TRUE(pipeline.ReconcileShards().ok());
  EXPECT_EQ(pipeline.Shards("tally").size(), 4u);

  auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/30'000);
  ASSERT_TRUE(drained.ok()) << drained.status();
  ASSERT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(collected->size(), 140u);
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::stylus
