// Tests for the parallel shard scheduler (ShardExecutor + Pipeline::Options):
// serial-vs-parallel differential equivalence (identical per-shard
// checkpoints and outputs across num_threads ∈ {1, 4}), monitoring and
// auto-scaling racing a round that is in flight on the worker pool, and the
// RunUntilQuiescent give-up status.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "common/serde.h"
#include "core/monitoring.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "common/shard_executor.h"
#include "core/sink.h"

namespace fbstream::stylus {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"ts", ValueType::kInt64}, {"k", ValueType::kString}});
}

SchemaPtr CountSchema() {
  return Schema::Make({{"count", ValueType::kInt64}});
}

class PassthroughProcessor : public StatelessProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    out->push_back(event.row);
  }
};

// Counts events; emits the running count at each checkpoint (Figure 6).
class CounterProcessor : public StatefulProcessor {
 public:
  void Process(const Event& /*event*/, std::vector<Row>* /*out*/) override {
    ++count_;
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* out) override {
    out->push_back(Row(CountSchema(), {Value(count_)}));
  }
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

TEST(ShardExecutorTest, RunsEveryTaskAcrossBatches) {
  ShardExecutor executor(4);
  EXPECT_EQ(executor.num_threads(), 4);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 33; ++i) {
      tasks.push_back([&ran] { ran.fetch_add(1); });
    }
    executor.RunBatch(std::move(tasks));
  }
  EXPECT_EQ(ran.load(), 330);
  executor.RunBatch({});  // Empty batch is a no-op.
  EXPECT_EQ(ran.load(), 330);
}

TEST(ShardExecutorTest, ConcurrentBatchesComplete) {
  ShardExecutor executor(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&executor, &ran] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 50; ++i) tasks.push_back([&ran] { ++ran; });
      executor.RunBatch(std::move(tasks));
    });
  }
  for (std::thread& s : submitters) s.join();
  EXPECT_EQ(ran.load(), 150);
}

// Teardown torture: Shutdown races live submitters. The contract is that
// every task handed to Submit or RunBatch runs exactly once — tasks arriving
// after stop run inline on the submitter, tasks queued before stop are
// drained by the workers before they exit — and that Shutdown is idempotent
// (the destructor's second call must be a no-op, not a double-join).
TEST(ShardExecutorTest, ShutdownRacesSubmittersWithoutLosingTasks) {
  for (int iter = 0; iter < 40; ++iter) {
    std::atomic<int> ran{0};
    std::atomic<int> submitted{0};
    {
      ShardExecutor executor(3);
      std::atomic<bool> go{false};
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&executor, &ran, &submitted, &go] {
          while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
          for (int i = 0; i < 25; ++i) {
            if (i % 3 == 0) {
              submitted.fetch_add(1);
              executor.Submit([&ran] { ran.fetch_add(1); });
            } else {
              std::vector<std::function<void()>> tasks;
              for (int j = 0; j < 4; ++j) {
                tasks.push_back([&ran] { ran.fetch_add(1); });
              }
              submitted.fetch_add(4);
              executor.RunBatch(std::move(tasks));
            }
          }
        });
      }
      go.store(true, std::memory_order_release);
      // Vary when the shutdown lands relative to the submission burst.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (iter % 7)));
      executor.Shutdown();
      for (std::thread& s : submitters) s.join();
      executor.Shutdown();  // Idempotent; destructor calls it a third time.
    }
    ASSERT_EQ(ran.load(), submitted.load()) << "iteration " << iter;
  }
}

// Regression: the stopped-path of RunBatch used to run its tasks inline
// while still holding the queue mutex, so a task that re-entered the same
// executor (Submit or a nested RunBatch) self-deadlocked on the
// non-recursive lock. Both inline fallbacks must run after releasing it.
TEST(ShardExecutorTest, StoppedInlineTasksMayReenterExecutor) {
  ShardExecutor executor(2);
  executor.Shutdown();
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&executor, &ran] {
    executor.Submit([&ran] { ran.fetch_add(1); });
  });
  tasks.push_back([&executor, &ran] {
    std::vector<std::function<void()>> nested;
    nested.push_back([&ran] { ran.fetch_add(1); });
    executor.RunBatch(std::move(nested));
  });
  executor.RunBatch(std::move(tasks));
  EXPECT_EQ(ran.load(), 2);
}

// Everything observable from one serial-vs-parallel differential run of a
// two-node DAG: per-shard checkpoint counts, per-bucket placement of the
// intermediate category, and the multiset of emitted rows.
struct RunResult {
  size_t total_processed = 0;
  std::vector<uint64_t> upper_checkpoints;
  std::vector<uint64_t> agg_checkpoints;
  std::vector<uint64_t> mid_next_sequence;
  std::vector<int64_t> counts;  // Sorted count rows from the agg node.
};

RunResult RunDifferentialWorkload(int num_threads, int buckets, int events) {
  SimClock clock(1);
  scribe::Scribe scribe(&clock);
  const std::string dir =
      MakeTempDir("parallel_diff_" + std::to_string(num_threads));

  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = buckets;
  EXPECT_TRUE(scribe.CreateCategory(in).ok());
  scribe::CategoryConfig mid;
  mid.name = "mid";
  mid.num_buckets = buckets;
  EXPECT_TRUE(scribe.CreateCategory(mid).ok());

  TextRowCodec codec(EventSchema());
  for (int i = 0; i < events; ++i) {
    Row row(EventSchema(), {Value(i), Value("k" + std::to_string(i))});
    EXPECT_TRUE(
        scribe.WriteSharded("in", "k" + std::to_string(i), codec.Encode(row))
            .ok());
  }

  Pipeline pipeline(&scribe, &clock, Pipeline::Options{num_threads});

  NodeConfig upper;
  upper.name = "upper";
  upper.input_category = "in";
  upper.input_schema = EventSchema();
  upper.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  upper.backend = StateBackend::kNone;
  upper.state_dir = dir + "/upper";
  upper.checkpoint_every_events = 64;
  upper.sink = std::make_shared<ScribeSink>(&scribe, "mid", EventSchema(),
                                            std::vector<std::string>{"k"});
  EXPECT_TRUE(pipeline.AddNode(upper).ok());

  auto collected = std::make_shared<CollectingSink>();
  NodeConfig agg;
  agg.name = "agg";
  agg.input_category = "mid";
  agg.input_schema = EventSchema();
  agg.stateful_factory = [] { return std::make_unique<CounterProcessor>(); };
  agg.state_semantics = StateSemantics::kExactlyOnce;
  agg.output_semantics = OutputSemantics::kAtLeastOnce;
  agg.backend = StateBackend::kLocal;
  agg.state_dir = dir + "/agg";
  agg.checkpoint_every_events = 64;
  agg.sink = collected;
  EXPECT_TRUE(pipeline.AddNode(agg).ok());

  auto drained = pipeline.RunUntilQuiescent();
  EXPECT_TRUE(drained.ok()) << drained.status();

  RunResult result;
  result.total_processed = drained.ok() ? drained.value() : 0;
  for (NodeShard* shard : pipeline.Shards("upper")) {
    result.upper_checkpoints.push_back(shard->checkpoints_completed());
    EXPECT_EQ(shard->ProcessingLag(), 0u);
  }
  for (NodeShard* shard : pipeline.Shards("agg")) {
    result.agg_checkpoints.push_back(shard->checkpoints_completed());
    EXPECT_EQ(shard->ProcessingLag(), 0u);
  }
  for (int b = 0; b < buckets; ++b) {
    auto next = scribe.NextSequence("mid", b);
    EXPECT_TRUE(next.ok());
    result.mid_next_sequence.push_back(next.ok() ? next.value() : 0);
  }
  for (const Row& row : collected->rows()) {
    result.counts.push_back(row.Get("count").CoerceInt64());
  }
  std::sort(result.counts.begin(), result.counts.end());
  EXPECT_TRUE(RemoveAll(dir).ok());
  return result;
}

TEST(ParallelPipelineTest, SerialAndParallelRoundsAreEquivalent) {
  const int kBuckets = 8;
  const int kEvents = 2000;
  RunResult serial = RunDifferentialWorkload(1, kBuckets, kEvents);
  RunResult parallel = RunDifferentialWorkload(4, kBuckets, kEvents);

  // Both modes processed every event at both nodes.
  EXPECT_EQ(serial.total_processed, static_cast<size_t>(2 * kEvents));
  EXPECT_EQ(parallel.total_processed, serial.total_processed);
  // Identical per-shard checkpoint sequences: batching depends only on
  // bucket contents, which WriteSharded fixes independent of threading.
  EXPECT_EQ(parallel.upper_checkpoints, serial.upper_checkpoints);
  EXPECT_EQ(parallel.agg_checkpoints, serial.agg_checkpoints);
  // Identical per-bucket placement of the resharded intermediate stream.
  EXPECT_EQ(parallel.mid_next_sequence, serial.mid_next_sequence);
  // Identical emitted rows (as a multiset; only interleaving may differ).
  EXPECT_EQ(parallel.counts, serial.counts);
}

TEST(ParallelPipelineTest, ParallelCrashRecoveryMatchesSerialSemantics) {
  // A shard that crashes mid-round in parallel mode stays dead without
  // failing the round, and recovers from its checkpoint — §4.2.2
  // independence holds on the worker pool too.
  SimClock clock(1);
  scribe::Scribe scribe(&clock);
  const std::string dir = MakeTempDir("parallel_crash");
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = 4;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());

  TextRowCodec codec(EventSchema());
  for (int i = 0; i < 400; ++i) {
    Row row(EventSchema(), {Value(i), Value("k" + std::to_string(i))});
    ASSERT_TRUE(
        scribe.WriteSharded("in", "k" + std::to_string(i), codec.Encode(row))
            .ok());
  }

  Pipeline pipeline(&scribe, &clock, Pipeline::Options{4});
  auto collected = std::make_shared<CollectingSink>();
  NodeConfig node;
  node.name = "worker";
  node.input_category = "in";
  node.input_schema = EventSchema();
  node.stateful_factory = [] { return std::make_unique<CounterProcessor>(); };
  node.state_semantics = StateSemantics::kExactlyOnce;
  node.output_semantics = OutputSemantics::kAtLeastOnce;
  node.backend = StateBackend::kLocal;
  node.state_dir = dir + "/state";
  node.checkpoint_every_events = 32;
  node.sink = collected;
  ASSERT_TRUE(pipeline.AddNode(node).ok());

  // Shard 2 crashes at its first checkpoint attempt.
  std::atomic<bool> armed{true};
  pipeline.Shard("worker", 2)->SetFailureInjector([&armed](FailurePoint p) {
    return p == FailurePoint::kAfterProcessing && armed.exchange(false);
  });

  auto first = pipeline.RunUntilQuiescent();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(pipeline.Shard("worker", 2)->alive());
  // The crashed shard's bucket still has backlog; the others drained.
  EXPECT_GT(pipeline.Shard("worker", 2)->ProcessingLag(), 0u);

  ASSERT_TRUE(pipeline.RecoverAll().ok());
  auto second = pipeline.RunUntilQuiescent();
  ASSERT_TRUE(second.ok()) << second.status();
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ParallelPipelineTest, AutoScalerReconcilesWhileRoundInFlight) {
  SimClock clock(1);
  scribe::Scribe scribe(&clock);
  const std::string dir = MakeTempDir("parallel_scale");
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = 2;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());

  Pipeline pipeline(&scribe, &clock, Pipeline::Options{4});
  NodeConfig node;
  node.name = "worker";
  node.input_category = "in";
  node.input_schema = EventSchema();
  node.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  node.backend = StateBackend::kNone;
  node.state_dir = dir + "/state";
  node.checkpoint_every_events = 64;
  ASSERT_TRUE(pipeline.AddNode(node).ok());

  MonitoringService monitoring(&clock);
  monitoring.RegisterPipeline("svc", &pipeline);
  AutoScaler::Options options;
  options.lag_threshold = 1;
  options.sustained_samples = 1;
  options.max_buckets = 8;
  AutoScaler scaler(&monitoring, &scribe, options);
  scaler.RegisterPipeline("svc", &pipeline);

  // Driver thread keeps rounds in flight on the worker pool while the main
  // thread feeds input and runs monitoring + auto-scaling against it.
  std::atomic<bool> stop{false};
  std::atomic<bool> round_failed{false};
  std::thread driver([&] {
    while (!stop.load()) {
      auto result = pipeline.RunRound();
      if (!result.ok()) round_failed.store(true);
    }
  });

  TextRowCodec codec(EventSchema());
  int written = 0;
  for (int iter = 0; iter < 1000 && scaler.scale_ups() < 2; ++iter) {
    for (int i = 0; i < 500; ++i, ++written) {
      ASSERT_TRUE(scribe
                      .WriteSharded("in", "k" + std::to_string(written),
                                    codec.Encode(Row(
                                        EventSchema(),
                                        {Value(written),
                                         Value("k" + std::to_string(written))})))
                      .ok());
    }
    monitoring.Sample();
    scaler.Evaluate();
  }
  stop.store(true);
  driver.join();

  EXPECT_FALSE(round_failed.load());
  EXPECT_GE(scaler.scale_ups(), 2);
  const int buckets = scribe.NumBuckets("in");
  EXPECT_GE(buckets, 8);
  // Shards reconciled mid-flight match the bucket count and drain cleanly.
  EXPECT_EQ(pipeline.Shards("worker").size(), static_cast<size_t>(buckets));
  auto drained = pipeline.RunUntilQuiescent();
  ASSERT_TRUE(drained.ok()) << drained.status();
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ParallelPipelineTest, RunUntilQuiescentReportsGiveUp) {
  // A node that feeds its own input never quiesces; the driver must be able
  // to tell "gave up" from "drained".
  SimClock clock(1);
  scribe::Scribe scribe(&clock);
  const std::string dir = MakeTempDir("parallel_loop");
  scribe::CategoryConfig loop;
  loop.name = "loop";
  loop.num_buckets = 1;
  ASSERT_TRUE(scribe.CreateCategory(loop).ok());

  Pipeline pipeline(&scribe, &clock);
  NodeConfig node;
  node.name = "echo";
  node.input_category = "loop";
  node.input_schema = EventSchema();
  node.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  node.backend = StateBackend::kNone;
  node.state_dir = dir + "/state";
  node.sink = std::make_shared<ScribeSink>(&scribe, "loop", EventSchema(),
                                           std::vector<std::string>{"k"});
  ASSERT_TRUE(pipeline.AddNode(node).ok());

  TextRowCodec codec(EventSchema());
  ASSERT_TRUE(
      scribe.Write("loop", 0,
                   codec.Encode(Row(EventSchema(), {Value(0), Value("k")})))
          .ok());

  auto result = pipeline.RunUntilQuiescent(/*max_rounds=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();

  // An idle pipeline still reports a clean drain.
  scribe::CategoryConfig other;
  other.name = "other";
  other.num_buckets = 1;
  ASSERT_TRUE(scribe.CreateCategory(other).ok());
  Pipeline idle(&scribe, &clock);
  NodeConfig quiet = node;
  quiet.name = "quiet";
  quiet.input_category = "other";
  quiet.sink = nullptr;
  ASSERT_TRUE(idle.AddNode(quiet).ok());
  auto ok = idle.RunUntilQuiescent(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 0u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::stylus
