// Tests for the Presto stand-in: SELECT over Hive partitions (projection,
// filters, aggregates, GROUP BY, ORDER BY, LIMIT), partition subsets, and
// sending results to Laser (§2.7).

#include <gtest/gtest.h>

#include "common/fs.h"
#include "presto/presto.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"

namespace fbstream::presto {
namespace {

SchemaPtr SalesSchema() {
  return Schema::Make({{"ds_time", ValueType::kInt64},
                       {"region", ValueType::kString},
                       {"product", ValueType::kString},
                       {"units", ValueType::kInt64}});
}

class PrestoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("presto");
    hive_ = std::make_unique<hive::Hive>(dir_ + "/hive");
    schema_ = SalesSchema();
    ASSERT_TRUE(hive_->CreateTable("sales", schema_).ok());
    // Two days of data.
    std::vector<Row> day1 = {
        Make(1, "us", "widget", 10), Make(2, "us", "gadget", 5),
        Make(3, "eu", "widget", 7)};
    std::vector<Row> day2 = {
        Make(4, "us", "widget", 20), Make(5, "eu", "gadget", 2),
        Make(6, "eu", "widget", 3)};
    ASSERT_TRUE(hive_->WritePartition("sales", "2016-01-01", day1).ok());
    ASSERT_TRUE(hive_->LandPartition("sales", "2016-01-01").ok());
    ASSERT_TRUE(hive_->WritePartition("sales", "2016-01-02", day2).ok());
    ASSERT_TRUE(hive_->LandPartition("sales", "2016-01-02").ok());
    presto_ = std::make_unique<Presto>(hive_.get());
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  Row Make(int64_t t, const std::string& region, const std::string& product,
           int64_t units) {
    return Row(schema_, {Value(t), Value(region), Value(product),
                         Value(units)});
  }

  std::string dir_;
  std::unique_ptr<hive::Hive> hive_;
  SchemaPtr schema_;
  std::unique_ptr<Presto> presto_;
};

TEST_F(PrestoTest, PlainProjectionAndFilter) {
  auto result = presto_->Execute(
      "SELECT region, units FROM sales WHERE product = 'widget';");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows_scanned, 6u);
  EXPECT_EQ(result->partitions_scanned, 2u);
  EXPECT_EQ(result->schema->num_columns(), 2u);
  EXPECT_EQ(result->rows[0].Get("region").AsString(), "us");
}

TEST_F(PrestoTest, GroupByAggregates) {
  auto result = presto_->Execute(
      "SELECT region, count(*) AS n, sum(units) AS total FROM sales "
      "GROUP BY region ORDER BY total DESC;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].Get("region").AsString(), "us");
  EXPECT_DOUBLE_EQ(result->rows[0].Get("total").CoerceDouble(), 35.0);
  EXPECT_DOUBLE_EQ(result->rows[0].Get("n").CoerceDouble(), 3.0);
  EXPECT_EQ(result->rows[1].Get("region").AsString(), "eu");
  EXPECT_DOUBLE_EQ(result->rows[1].Get("total").CoerceDouble(), 12.0);
}

TEST_F(PrestoTest, ImplicitGroupByFromSelectItems) {
  auto result = presto_->Execute(
      "SELECT product, avg(units) AS mean FROM sales;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);  // widget, gadget.
}

TEST_F(PrestoTest, OrderByAndLimit) {
  auto result = presto_->Execute(
      "SELECT product, units FROM sales ORDER BY units DESC LIMIT 2;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].Get("units").AsInt64(), 20);
  EXPECT_EQ(result->rows[1].Get("units").AsInt64(), 10);
}

TEST_F(PrestoTest, ScalarExpressionsInSelect) {
  auto result = presto_->Execute(
      "SELECT upper(region) AS r, units * 2 AS dbl FROM sales LIMIT 1;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].Get("r").CoerceString(), "US");
  EXPECT_EQ(result->rows[0].Get("dbl").CoerceInt64(), 20);
}

TEST_F(PrestoTest, PartitionSubset) {
  // "Query results change only once a day, after new data is loaded."
  auto result = presto_->ExecuteOnPartitions(
      "SELECT count(*) AS n FROM sales;", {"2016-01-01"});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->rows[0].Get("n").CoerceDouble(), 3.0);
  EXPECT_EQ(result->partitions_scanned, 1u);
}

TEST_F(PrestoTest, Validation) {
  EXPECT_FALSE(presto_->Execute("SELECT nosuch FROM sales;").ok());
  EXPECT_FALSE(presto_->Execute("SELECT units FROM missing_table;").ok());
  EXPECT_FALSE(presto_->Execute("SELECT units sales;").ok());
  EXPECT_FALSE(
      presto_->Execute("SELECT units FROM sales ORDER BY nosuch;").ok());
}

TEST_F(PrestoTest, SendResultToLaser) {
  // §2.7: query results "can then be sent to Laser for access by products
  // and realtime stream processors".
  auto result = presto_->Execute(
      "SELECT region, sum(units) AS total FROM sales GROUP BY region;");
  ASSERT_TRUE(result.ok()) << result.status();

  laser::LaserAppConfig config;
  config.name = "region_totals";
  config.input_schema = result->schema;
  config.key_columns = {"region"};
  config.value_columns = {"total"};
  SimClock clock(1);
  auto app = laser::LaserApp::Create(config, nullptr, &clock,
                                     dir_ + "/laser");
  ASSERT_TRUE(app.ok()) << app.status();
  ASSERT_TRUE(Presto::SendToLaser(*result, app->get()).ok());

  auto us = (*app)->Get(Value("us"));
  ASSERT_TRUE(us.ok());
  EXPECT_DOUBLE_EQ(us->Get("total").CoerceDouble(), 35.0);
  auto eu = (*app)->Get(Value("eu"));
  ASSERT_TRUE(eu.ok());
  EXPECT_DOUBLE_EQ(eu->Get("total").CoerceDouble(), 12.0);
}

}  // namespace
}  // namespace fbstream::presto
