// Tests for Swift: N-strings / B-bytes checkpoint triggers, the pipe
// protocol, at-least-once replay after a crash, and the
// buffer-everything-between-checkpoints execution model.

#include <gtest/gtest.h>

#include "common/fs.h"
#include "swift/swift.h"

namespace fbstream::swift {
namespace {

class RecordingClient : public SwiftClient {
 public:
  void HandleMessage(const std::string& message) override {
    messages.push_back(message);
  }
  void OnCheckpoint(uint64_t next_offset) override {
    checkpoint_offsets.push_back(next_offset);
  }

  std::vector<std::string> messages;
  std::vector<uint64_t> checkpoint_offsets;
};

class SwiftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("swift");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig config;
    config.name = "in";
    ASSERT_TRUE(scribe_->CreateCategory(config).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  SwiftConfig BaseConfig() {
    SwiftConfig config;
    config.name = "tailer";
    config.category = "in";
    config.checkpoint_every_strings = 10;
    config.checkpoint_dir = dir_;
    return config;
  }

  void WriteMessages(int from, int to) {
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(scribe_->Write("in", 0, "msg" + std::to_string(i)).ok());
    }
  }

  SimClock clock_{1};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
};

TEST_F(SwiftTest, ConfigValidation) {
  SwiftConfig no_trigger = BaseConfig();
  no_trigger.checkpoint_every_strings = 0;
  RecordingClient client;
  EXPECT_FALSE(SwiftRunner::Create(no_trigger, scribe_.get(), &client).ok());

  SwiftConfig no_dir = BaseConfig();
  no_dir.checkpoint_dir.clear();
  EXPECT_FALSE(SwiftRunner::Create(no_dir, scribe_.get(), &client).ok());

  SwiftConfig bad_category = BaseConfig();
  bad_category.category = "missing";
  EXPECT_FALSE(SwiftRunner::Create(bad_category, scribe_.get(), &client).ok());
}

TEST_F(SwiftTest, DeliversInCheckpointIntervals) {
  RecordingClient client;
  auto runner = SwiftRunner::Create(BaseConfig(), scribe_.get(), &client);
  ASSERT_TRUE(runner.ok());
  WriteMessages(0, 25);

  auto n1 = (*runner)->RunOnce();
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, 10u);  // One full interval.
  EXPECT_EQ(client.messages.size(), 10u);
  EXPECT_EQ(client.messages[0], "msg0");
  ASSERT_EQ(client.checkpoint_offsets.size(), 1u);
  EXPECT_EQ(client.checkpoint_offsets[0], 10u);

  ASSERT_TRUE((*runner)->RunOnce().ok());
  EXPECT_EQ(client.messages.size(), 20u);

  // Remaining 5 messages do not fill an interval...
  auto partial = (*runner)->RunOnce();
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, 0u);
  // ...until flushed explicitly.
  auto flushed = (*runner)->RunOnce(/*flush_partial=*/true);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 5u);
  EXPECT_EQ(client.messages.size(), 25u);
}

TEST_F(SwiftTest, ByteTrigger) {
  SwiftConfig config = BaseConfig();
  config.checkpoint_every_strings = 0;
  config.checkpoint_every_bytes = 30;  // ~6 x "msgN\n".
  RecordingClient client;
  auto runner = SwiftRunner::Create(config, scribe_.get(), &client);
  ASSERT_TRUE(runner.ok());
  WriteMessages(0, 10);
  auto n = (*runner)->RunOnce();
  ASSERT_TRUE(n.ok());
  EXPECT_GT(*n, 0u);
  EXPECT_LT(*n, 10u);
}

TEST_F(SwiftTest, AtLeastOnceReplayAfterCrash) {
  RecordingClient client;
  auto runner = SwiftRunner::Create(BaseConfig(), scribe_.get(), &client);
  ASSERT_TRUE(runner.ok());
  WriteMessages(0, 20);
  ASSERT_TRUE((*runner)->RunOnce().ok());  // Checkpoint at 10.
  EXPECT_EQ(client.messages.size(), 10u);

  // Crash before the next checkpoint: a new runner (same checkpoint dir)
  // resumes from offset 10 and re-reads everything after it.
  RecordingClient client2;
  auto runner2 = SwiftRunner::Create(BaseConfig(), scribe_.get(), &client2);
  ASSERT_TRUE(runner2.ok());
  EXPECT_EQ((*runner2)->offset(), 10u);
  ASSERT_TRUE((*runner2)->RunOnce().ok());
  ASSERT_EQ(client2.messages.size(), 10u);
  EXPECT_EQ(client2.messages[0], "msg10");  // No gap, no skip.
}

TEST_F(SwiftTest, ReplayedIntervalIsDuplicatedNotLost) {
  // Deliver an interval, then "crash" before its checkpoint is consumed by
  // simulating an interrupted run: recover to the pre-interval offset.
  RecordingClient client;
  auto runner = SwiftRunner::Create(BaseConfig(), scribe_.get(), &client);
  ASSERT_TRUE(runner.ok());
  WriteMessages(0, 10);
  ASSERT_TRUE((*runner)->RunOnce().ok());
  // Manually roll back the durable checkpoint to simulate a crash between
  // delivery and checkpoint (the window where duplication happens).
  ASSERT_TRUE(RemoveAll(dir_).ok());
  ASSERT_TRUE(CreateDirs(dir_).ok());
  RecordingClient client2;
  auto runner2 = SwiftRunner::Create(BaseConfig(), scribe_.get(), &client2);
  ASSERT_TRUE(runner2.ok());
  ASSERT_TRUE((*runner2)->RunOnce().ok());
  EXPECT_EQ(client2.messages.size(), 10u);  // Same 10 messages, again.
  EXPECT_EQ(client2.messages[0], "msg0");
}

TEST_F(SwiftTest, PipeProtocolFramesWithNewlines) {
  // The default HandleBatch splits the pipe buffer on newlines.
  class RawClient : public SwiftClient {
   public:
    void HandleBatch(const std::string& pipe_data) override {
      raw = pipe_data;
      SwiftClient::HandleBatch(pipe_data);
    }
    void HandleMessage(const std::string& m) override { parsed.push_back(m); }
    std::string raw;
    std::vector<std::string> parsed;
  };
  RawClient client;
  SwiftConfig config = BaseConfig();
  config.checkpoint_every_strings = 3;
  auto runner = SwiftRunner::Create(config, scribe_.get(), &client);
  ASSERT_TRUE(runner.ok());
  WriteMessages(0, 3);
  ASSERT_TRUE((*runner)->RunOnce().ok());
  EXPECT_EQ(client.raw, "msg0\nmsg1\nmsg2\n");
  EXPECT_EQ(client.parsed,
            (std::vector<std::string>{"msg0", "msg1", "msg2"}));
}

TEST_F(SwiftTest, MultipleBucketsViaSeparateRunners) {
  scribe::CategoryConfig wide;
  wide.name = "wide";
  wide.num_buckets = 2;
  ASSERT_TRUE(scribe_->CreateCategory(wide).ok());
  ASSERT_TRUE(scribe_->Write("wide", 0, "a").ok());
  ASSERT_TRUE(scribe_->Write("wide", 1, "b").ok());

  RecordingClient c0;
  RecordingClient c1;
  SwiftConfig config = BaseConfig();
  config.category = "wide";
  config.checkpoint_every_strings = 1;
  config.bucket = 0;
  auto r0 = SwiftRunner::Create(config, scribe_.get(), &c0);
  config.bucket = 1;
  auto r1 = SwiftRunner::Create(config, scribe_.get(), &c1);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE((*r0)->RunOnce().ok());
  ASSERT_TRUE((*r1)->RunOnce().ok());
  EXPECT_EQ(c0.messages, std::vector<std::string>{"a"});
  EXPECT_EQ(c1.messages, std::vector<std::string>{"b"});
}

}  // namespace
}  // namespace fbstream::swift
