// Chaos soak: a Scribe -> Stylus counter pipeline driven under a seeded
// fault schedule — probabilistic transport/WAL faults, a timed HDFS outage
// window, and mid-run shard crashes. Asserts the robustness contract
// end-to-end:
//   * at-least-once delivery: every input id reaches the sink despite
//     injected append failures, crashes, and replay;
//   * state convergence: exactly-once state ends at the same count as a
//     fault-free run over the same input;
//   * degraded mode (§4.4.2): the HDFS window is survived without remote
//     backups, missed backups queue, and the queue drains to zero once HDFS
//     recovers;
//   * determinism: the same fault seed produces the identical firing
//     journal, so any chaos failure replays exactly.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/processor.h"
#include "core/sink.h"
#include "scribe/scribe.h"
#include "storage/hdfs/hdfs.h"

namespace fbstream::stylus {
namespace {

SchemaPtr InputSchema() {
  return Schema::Make(
      {{"event_time", ValueType::kInt64}, {"id", ValueType::kInt64}});
}

SchemaPtr OutputSchema() {
  return Schema::Make(
      {{"kind", ValueType::kString}, {"value", ValueType::kInt64}});
}

// Counts events (exactly-once state) and traces each seen id to the sink
// (at-least-once output, so replayed events show up as duplicates).
class TracingCounter : public StatefulProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    ++count_;
    out->push_back(Row(OutputSchema(),
                       {Value("id"), Value(event.row.Get("id").CoerceInt64())}));
  }
  void OnCheckpoint(Micros, std::vector<Row>* out) override {
    out->push_back(Row(OutputSchema(), {Value("count"), Value(count_)}));
  }
  std::string SerializeState() const override { return std::to_string(count_); }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

constexpr int kEvents = 600;
// Clock-time fault schedule (clock starts at 1s). Events flow for at least
// 60 rounds of 10 events / 10ms, so checkpoints keep happening well past the
// outage window no matter how much retry backoff skews the clock forward.
constexpr Micros kOutageStart = 1'200'000;
constexpr Micros kOutageEnd = 1'450'000;
constexpr Micros kLastCrash = 1'300'000;  // Quiet period before recovery.

struct ChaosOutcome {
  int64_t final_count = 0;       // Largest checkpointed count row.
  std::set<int64_t> ids;         // Distinct ids delivered.
  size_t rows_delivered = 0;     // Including duplicates from replay.
  uint64_t crashes = 0;
  BackupHealth health;
  std::vector<std::string> journal;
};

ChaosOutcome RunChaos(uint64_t seed, bool inject) {
  SimClock clock(1'000'000);
  auto* faults = FaultRegistry::Global();
  faults->Reset();
  faults->SetClock(&clock);
  if (inject) {
    faults->FailWithProbability("scribe.append", 0.05, seed);
    faults->FailWithProbability("lsm.wal.append", 0.02, seed + 1);
    faults->SetUnavailableBetween("hdfs.write", kOutageStart, kOutageEnd);
  }

  const std::string dir = MakeTempDir("chaos");
  hdfs::HdfsCluster hdfs(dir + "/hdfs");
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig cat;
  cat.name = "in";
  EXPECT_TRUE(scribe.CreateCategory(cat).ok());

  auto sink = std::make_shared<CollectingSink>();
  NodeConfig config;
  config.name = "chaos-counter";
  config.input_category = "in";
  config.input_schema = InputSchema();
  config.event_time_column = "event_time";
  config.stateful_factory = [] { return std::make_unique<TracingCounter>(); };
  config.state_semantics = StateSemantics::kExactlyOnce;
  config.output_semantics = OutputSemantics::kAtLeastOnce;
  config.checkpoint_every_events = 10;
  config.backend = StateBackend::kLocal;
  config.state_dir = dir + "/state";
  config.hdfs = &hdfs;
  config.backup_every_checkpoints = 1;
  config.max_pending_backups = 4;
  config.sink = sink;
  auto shard_or = NodeShard::Create(config, &scribe, &clock, 0);
  EXPECT_TRUE(shard_or.ok());
  NodeShard* shard = shard_or->get();

  TextRowCodec codec(InputSchema());
  Rng chaos_rng(seed + 2);
  ChaosOutcome out;
  int written = 0;
  bool settled = false;
  for (int round = 0; round < 5000 && !settled; ++round) {
    // At-least-once producer: up to 10 new events per round; an append whose
    // internal retry budget was exhausted is retried next round.
    for (int k = 0; k < 10 && written < kEvents; ++k) {
      Row row(InputSchema(), {Value(clock.NowMicros()), Value(written)});
      const Status st = scribe.Write("in", 0, codec.Encode(row));
      if (st.ok()) {
        ++written;
      } else {
        EXPECT_TRUE(st.IsRetryable()) << st;
        break;
      }
    }
    // Crash storm, confined to before kLastCrash so the tail of the outage
    // window always has missed backups left to resync.
    if (inject && shard->alive() && clock.NowMicros() < kLastCrash &&
        chaos_rng.Bernoulli(0.15)) {
      shard->Crash();
      ++out.crashes;
    }
    if (!shard->alive()) {
      EXPECT_TRUE(shard->Recover().ok());
    }
    auto r = shard->RunOnce();
    if (!r.ok()) {
      // Exhausted retry budgets surface as retryable statuses; the round is
      // simply rerun. Nothing else may fail the soak.
      EXPECT_TRUE(r.status().IsRetryable() || r.status().IsAborted())
          << r.status();
    }
    clock.AdvanceMicros(10'000);
    const BackupHealth h = shard->GetBackupHealth();
    settled = written == kEvents && r.ok() && r.value() == 0 && !h.degraded &&
              h.pending_backups == 0 && clock.NowMicros() > kOutageEnd;
  }
  EXPECT_TRUE(settled) << "chaos run did not quiesce";

  out.health = shard->GetBackupHealth();
  out.journal = faults->FiringJournal();
  for (const Row& row : sink->rows()) {
    ++out.rows_delivered;
    const int64_t value = row.Get("value").CoerceInt64();
    if (row.Get("kind").ToString() == "id") {
      out.ids.insert(value);
    } else if (value > out.final_count) {
      out.final_count = value;
    }
  }
  faults->Reset();
  faults->SetClock(nullptr);
  EXPECT_TRUE(RemoveAll(dir).ok());
  return out;
}

TEST(ChaosTest, SoakConvergesAndResyncsUnderFaultSchedule) {
  const ChaosOutcome faulty = RunChaos(/*seed=*/7, /*inject=*/true);
  const ChaosOutcome clean = RunChaos(/*seed=*/7, /*inject=*/false);

  // The schedule actually bit: faults fired and at least one crash landed.
  EXPECT_FALSE(faulty.journal.empty());
  EXPECT_GT(faulty.crashes, 0u);
  EXPECT_TRUE(clean.journal.empty());

  // At-least-once delivery: every input id observed, with replay showing up
  // only as duplicates, never as loss.
  ASSERT_EQ(faulty.ids.size(), static_cast<size_t>(kEvents));
  EXPECT_EQ(*faulty.ids.begin(), 0);
  EXPECT_EQ(*faulty.ids.rbegin(), kEvents - 1);
  EXPECT_GE(faulty.rows_delivered, clean.rows_delivered);

  // Exactly-once state converges to the fault-free result.
  EXPECT_EQ(clean.final_count, kEvents);
  EXPECT_EQ(faulty.final_count, clean.final_count);

  // Degraded mode was entered during the HDFS window, survived, and fully
  // resynced afterwards.
  EXPECT_GT(faulty.health.degraded_micros_total, 0u);
  EXPECT_GT(faulty.health.backups_resynced, 0u);
  EXPECT_EQ(faulty.health.pending_backups, 0u);
  EXPECT_FALSE(faulty.health.degraded);
  EXPECT_GT(faulty.health.backups_completed, 0u);
  EXPECT_EQ(clean.health.degraded_micros_total, 0u);
  EXPECT_EQ(clean.health.backups_resynced, 0u);
}

TEST(ChaosTest, SameSeedReplaysIdenticalFiringJournal) {
  const ChaosOutcome a = RunChaos(/*seed=*/11, /*inject=*/true);
  const ChaosOutcome b = RunChaos(/*seed=*/11, /*inject=*/true);
  ASSERT_FALSE(a.journal.empty());
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.final_count, b.final_count);
  EXPECT_EQ(a.crashes, b.crashes);

  const ChaosOutcome c = RunChaos(/*seed=*/12, /*inject=*/true);
  EXPECT_NE(a.journal, c.journal);
}

}  // namespace
}  // namespace fbstream::stylus
