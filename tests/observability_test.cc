// Tests for the self-hosted observability stack: the metrics registry and
// tracer (common/metrics.h), the telemetry exporter that flattens them into
// a Scribe category (core/telemetry.h), the Scuba-backed lag view that must
// agree with MonitoringService's direct polling (§6.4), and the
// OBSERVABILITY.md inventory that documents all of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "core/monitoring.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "core/telemetry.h"
#include "storage/scuba/scuba.h"

namespace fbstream::stylus {
namespace {

// ---------------------------------------------------------------------------
// Registry and histogram unit tests (fresh local registries: the global one
// accumulates across tests in this binary).

TEST(MetricsRegistryTest, CountersGaugesAndIdentity) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("m.requests", "nodeA", 0);
  c->Add();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);
  // Same (name, node, shard) → same object; different labels → different.
  EXPECT_EQ(registry.GetCounter("m.requests", "nodeA", 0), c);
  EXPECT_NE(registry.GetCounter("m.requests", "nodeA", 1), c);
  EXPECT_NE(registry.GetCounter("m.requests", "nodeB", 0), c);

  Gauge* g = registry.GetGauge("m.depth");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);

  auto names = registry.Names();
  EXPECT_EQ(names, (std::vector<std::string>{"m.depth", "m.requests"}));
}

TEST(MetricsRegistryTest, ResetValuesKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("m.count");
  Histogram* h = registry.GetHistogram("m.lat_us");
  c->Add(10);
  h->Record(100);
  registry.ResetValues();
  // The immortal-entries contract: values are zeroed, objects stay live.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Add(3);
  h->Record(8);
  EXPECT_EQ(registry.GetCounter("m.count"), c);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(h->GetSnapshot().max, 8u);
}

TEST(HistogramTest, BucketsPercentilesAndSnapshot) {
  Histogram h;
  // Bucket layout: bucket 0 holds zeros, bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_GE(Histogram::BucketUpperBound(Histogram::BucketFor(12345)), 12345u);

  for (uint64_t v : {1, 2, 3, 100, 1000, 100000}) h.Record(v);
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1u + 2 + 3 + 100 + 1000 + 100000);
  EXPECT_EQ(snap.max, 100000u);
  // Percentiles are exact to within a power-of-two bucket.
  EXPECT_LE(snap.Percentile(0.5), 128u);
  EXPECT_GE(snap.Percentile(0.99), 65536u);
  EXPECT_LE(snap.Percentile(0.5), snap.Percentile(0.99));
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  // The hot-path contract: Record is lock-free atomics only, so concurrent
  // recorders never serialize and never drop. Run under -DFBSTREAM_TSAN to
  // verify the absence of data races, and in any mode to verify totals.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i % 1000 + static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, 999u + kThreads - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(TracerTest, SamplingMintsEveryNth) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.MaybeStartTrace(), 0u);  // Disabled: never samples.

  tracer.SetSampleEvery(3);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 9; ++i) {
    const uint64_t id = tracer.MaybeStartTrace();
    if (id != 0) ids.push_back(id);
  }
  ASSERT_EQ(ids.size(), 3u);  // Every 3rd append sampled.
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()).size(), 3u);

  tracer.RecordSpan(SpanRecord{ids[0], "engine.process", "worker", 0, 10, 5});
  EXPECT_EQ(tracer.spans_recorded(), 1u);
  auto spans = tracer.DrainSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, ids[0]);
  EXPECT_EQ(spans[0].hop, "engine.process");
  EXPECT_TRUE(tracer.DrainSpans().empty());  // Drain removes.

  tracer.Reset();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.spans_recorded(), 0u);
}

TEST(TracerTest, BufferBoundDropsBeyondCap) {
  Tracer tracer;
  tracer.SetSampleEvery(1);
  const size_t overflow = 100;
  for (size_t i = 0; i < Tracer::kMaxBufferedSpans + overflow; ++i) {
    tracer.RecordSpan(SpanRecord{i + 1, "engine.process", "w", 0, 0, 1});
  }
  EXPECT_EQ(tracer.spans_dropped(), overflow);
  EXPECT_EQ(tracer.DrainSpans().size(), Tracer::kMaxBufferedSpans);
}

// ---------------------------------------------------------------------------
// End-to-end: exporter → Scribe → Scuba, differential against direct polling.

SchemaPtr InputSchema() {
  return Schema::Make({{"ts", ValueType::kInt64}, {"k", ValueType::kString}});
}

class NopProcessor : public StatelessProcessor {
 public:
  void Process(const Event&, std::vector<Row>*) override {}
};

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("observability");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig config;
    config.name = "in";
    config.num_buckets = 2;
    ASSERT_TRUE(scribe_->CreateCategory(config).ok());

    pipeline_ = std::make_unique<Pipeline>(scribe_.get(), &clock_);
    NodeConfig node;
    node.name = "worker";
    node.input_category = "in";
    node.input_schema = InputSchema();
    node.stateless_factory = [] { return std::make_unique<NopProcessor>(); };
    node.backend = StateBackend::kNone;
    node.state_dir = dir_ + "/state";
    node.sink = std::make_shared<CollectingSink>();
    ASSERT_TRUE(pipeline_->AddNode(node).ok());

    monitoring_ = std::make_unique<MonitoringService>(&clock_);
    monitoring_->RegisterPipeline("svc", pipeline_.get());

    exporter_ = std::make_unique<TelemetryExporter>(scribe_.get());
    exporter_->RegisterPipeline("svc", pipeline_.get());
    scuba_ = std::make_unique<scuba::Scuba>(scribe_.get());
    ASSERT_TRUE(exporter_->AttachToScuba(scuba_.get(), "telemetry").ok());
    table_ = scuba_->GetTable("telemetry");
    ASSERT_NE(table_, nullptr);
  }

  void TearDown() override {
    Tracer::Global()->Reset();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  void WriteMessages(int n) {
    TextRowCodec codec(InputSchema());
    for (int i = 0; i < n; ++i) {
      Row row(InputSchema(), {Value(i), Value("k" + std::to_string(i))});
      ASSERT_TRUE(scribe_->WriteSharded("in", "k" + std::to_string(i),
                                        codec.Encode(row))
                      .ok());
    }
  }

  // One telemetry tick: sample directly and export at the SAME clock time so
  // the two lag series are point-for-point comparable, then ingest.
  void Tick() {
    monitoring_->Sample();
    ASSERT_TRUE(exporter_->ExportOnce().ok());
    scuba_->PollAll();
    clock_.AdvanceMicros(kMicrosPerSecond);
  }

  SimClock clock_{1};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<MonitoringService> monitoring_;
  std::unique_ptr<TelemetryExporter> exporter_;
  std::unique_ptr<scuba::Scuba> scuba_;
  scuba::ScubaTable* table_ = nullptr;
};

TEST_F(ObservabilityTest, ScubaLagViewMatchesDirectPolling) {
  // Grow lag for three ticks, then drain and tick twice more.
  for (int tick = 0; tick < 3; ++tick) {
    WriteMessages(50);
    Tick();
  }
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  Tick();
  Tick();

  ScubaLagView view(table_);
  for (int shard = 0; shard < 2; ++shard) {
    const auto direct = monitoring_->History("svc", "worker", shard);
    const auto via_scuba = view.History("svc", "worker", shard);
    ASSERT_EQ(direct.size(), via_scuba.size()) << "shard " << shard;
    ASSERT_EQ(direct.size(), 5u);
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct[i].time, via_scuba[i].time);
      EXPECT_EQ(direct[i].lag_messages, via_scuba[i].lag_messages);
    }
    // Drained by the end.
    EXPECT_EQ(via_scuba.back().lag_messages, 0u);
    EXPECT_GT(via_scuba[2].lag_messages, 0u);
  }
  EXPECT_TRUE(view.History("svc", "nope", 0).empty());
}

TEST_F(ObservabilityTest, ScubaAlertsMatchDirectPolling) {
  auto alert_key = [](const MonitoringService::Alert& a) {
    return a.service + "/" + a.node + "/" + std::to_string(a.shard) + "=" +
           std::to_string(a.lag_messages);
  };
  auto keys = [&](std::vector<MonitoringService::Alert> alerts) {
    std::vector<std::string> out;
    for (const auto& a : alerts) out.push_back(alert_key(a));
    std::sort(out.begin(), out.end());
    return out;
  };

  ScubaLagView view(table_);
  // Backlogged: both modes must page, with identical alert contents.
  for (int tick = 0; tick < 3; ++tick) {
    WriteMessages(50);
    Tick();
  }
  const auto direct = monitoring_->ActiveAlerts(10);
  const auto via_scuba = view.ActiveAlerts(10);
  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(keys(direct), keys(via_scuba));
  EXPECT_EQ(view.IsFallingBehind("svc", "worker", 0),
            monitoring_->IsFallingBehind("svc", "worker", 0));

  // Drained: both modes clear.
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  Tick();
  EXPECT_TRUE(monitoring_->ActiveAlerts(10).empty());
  EXPECT_TRUE(view.ActiveAlerts(10).empty());
  EXPECT_EQ(view.IsFallingBehind("svc", "worker", 0),
            monitoring_->IsFallingBehind("svc", "worker", 0));
}

TEST_F(ObservabilityTest, SampledSpansLandInScubaWithAllHops) {
  Tracer::Global()->SetSampleEvery(1);  // Trace every append.
  WriteMessages(20);
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  Tick();

  // Per-hop breakdown is a group-by query over span rows.
  scuba::Query q;
  q.filters = {{"kind", scuba::FilterOp::kEq, Value("span")}};
  q.group_by = {"name"};
  q.aggregates = {scuba::Aggregate{scuba::AggKind::kCount},
                  scuba::Aggregate{scuba::AggKind::kMax, "value"}};
  auto result = table_->Run(q);
  ASSERT_TRUE(result.ok());
  std::set<std::string> hops;
  for (const scuba::ResultRow& r : result->rows) {
    ASSERT_EQ(r.group.size(), 1u);
    hops.insert(r.group[0].CoerceString());
    EXPECT_GT(r.aggregates[0], 0.0);  // Count per hop.
  }
  EXPECT_EQ(hops, (std::set<std::string>{"scribe.deliver", "engine.process",
                                         "storage.commit"}));

  // Every span row carries a nonzero trace id.
  scuba::Query ids;
  ids.filters = {{"kind", scuba::FilterOp::kEq, Value("span")},
                 {"trace_id", scuba::FilterOp::kLe, Value(int64_t{0})}};
  ids.aggregates = {scuba::Aggregate{scuba::AggKind::kCount}};
  auto zero_ids = table_->Run(ids);
  ASSERT_TRUE(zero_ids.ok());
  // No matching rows → no result cells at all (a count-of-zero never
  // materializes a row in read-time aggregation).
  EXPECT_TRUE(zero_ids->rows.empty());
}

TEST_F(ObservabilityTest, MetricRowsReachScubaAndSelfMeter) {
  WriteMessages(10);
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  Tick();
  EXPECT_GT(exporter_->rows_exported(), 0u);

  // The registry rows for this category's appends are queryable.
  scuba::Query q;
  q.filters = {{"kind", scuba::FilterOp::kEq, Value("counter")},
               {"name", scuba::FilterOp::kEq, Value("scribe.append.messages")},
               {"node", scuba::FilterOp::kEq, Value("in")}};
  q.aggregates = {scuba::Aggregate{scuba::AggKind::kMax, "value"}};
  auto result = table_->Run(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GE(result->rows[0].aggregates[0], 10.0);

  // Self-hosting: the telemetry stream's own appends are metered too, so the
  // next tick exports nonzero scribe.append.* for the telemetry category.
  Tick();
  scuba::Query self = q;
  self.filters[2].operand = Value(kDefaultTelemetryCategory);
  auto self_result = table_->Run(self);
  ASSERT_TRUE(self_result.ok());
  ASSERT_EQ(self_result->rows.size(), 1u);
  EXPECT_GT(self_result->rows[0].aggregates[0], 0.0);
}

// ---------------------------------------------------------------------------
// OBSERVABILITY.md inventory: the doc and the registry must not drift.

TEST_F(ObservabilityTest, InventoryInObservabilityDocMatchesRegistry) {
  // Exercise the stack so the global registry holds the stylus/scribe/scuba/
  // telemetry metrics (LSM, HDFS, retry, and fault metrics are registered by
  // their own tests/binaries; the doc-side check below still covers them).
  Tracer::Global()->SetSampleEvery(1);
  WriteMessages(10);
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  Tick();

  std::ifstream doc(std::string(FBSTREAM_SOURCE_DIR) + "/OBSERVABILITY.md");
  ASSERT_TRUE(doc.good()) << "OBSERVABILITY.md missing from repo root";
  std::stringstream buffer;
  buffer << doc.rdbuf();
  const std::string text = buffer.str();

  // Direction 1: everything registered at runtime is documented.
  for (const std::string& name : MetricsRegistry::Global()->Names()) {
    EXPECT_NE(text.find("`" + name + "`"), std::string::npos)
        << "metric " << name << " is registered but not in OBSERVABILITY.md";
  }
  // Direction 2: the documented inventory names real instrumentation sites,
  // including ones this test binary does not exercise.
  for (const char* name :
       {"scribe.append.messages", "scribe.append.bytes",
        "scribe.append.latency_us", "scribe.read.messages",
        "scribe.read.batches", "lsm.wal.appends", "lsm.wal.bytes",
        "lsm.flush.count", "lsm.flush.latency_us", "lsm.compaction.count",
        "lsm.compaction.latency_us", "hdfs.write.files", "hdfs.write.bytes",
        "hdfs.read.files", "hdfs.backup.latency_us", "hdfs.backup.completed",
        "hdfs.backup.failed", "retry.retries", "retry.exhausted",
        "fault.fires", "stylus.events.processed",
        "stylus.checkpoints.completed", "stylus.runonce.latency_us",
        "stylus.executor.batches", "stylus.executor.batch_us",
        "stylus.continuous.batches", "stylus.continuous.queue_depth",
        "stylus.continuous.backpressure_stalls",
        "stylus.continuous.overlap_inflight",
        "recovery.offsets.write_failures",
        "hop.scribe.deliver_us", "hop.engine.process_us",
        "hop.storage.commit_us", "scuba.rows.ingested",
        "telemetry.rows.exported"}) {
    EXPECT_NE(text.find("`" + std::string(name) + "`"), std::string::npos)
        << "metric " << name << " missing from OBSERVABILITY.md inventory";
  }
  // Span hops are documented as well.
  for (const char* hop : {"scribe.deliver", "engine.process",
                          "storage.commit"}) {
    EXPECT_NE(text.find("`" + std::string(hop) + "`"), std::string::npos)
        << "span hop " << hop << " missing from OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace fbstream::stylus
