// Tests for the Stylus core: semantics matrix (Fig 8), checkpoint write
// ordering and the Fig 7 counter behaviors under injected crashes,
// watermark estimation, local/remote state stores, HDFS backup and
// machine-loss recovery, monoid remote state (read-modify-write vs
// append-only), DAG pipelines with independent failures, and streaming vs
// batch equivalence.

#include <gtest/gtest.h>

#include "common/fs.h"
#include "common/hll.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/batch.h"
#include "core/checkpoint.h"
#include "core/monoid_state.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/semantics.h"
#include "core/sink.h"
#include "core/watermark.h"
#include "core/windowed.h"

namespace fbstream::stylus {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"topic", ValueType::kString}});
}

// Counts events; emits a (count) row at each checkpoint — the Counter Node
// of the paper's Figure 6.
class CounterProcessor : public StatefulProcessor {
 public:
  void Process(const Event& /*event*/, std::vector<Row>* /*out*/) override {
    ++count_;
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* out) override {
    auto schema = Schema::Make({{"count", ValueType::kInt64}});
    out->push_back(Row(schema, {Value(count_)}));
  }
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }
  int64_t count() const { return count_; }

 private:
  int64_t count_ = 0;
};

// Passes events through, tagging each with its id.
class PassthroughProcessor : public StatelessProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    out->push_back(event.row);
  }
};

// Counts events per topic as monoid contributions.
class TopicCountProcessor : public MonoidProcessor {
 public:
  TopicCountProcessor() : agg_(MakeInt64SumAggregator()) {}
  void Process(const Event& event,
               std::vector<Contribution>* contributions) override {
    contributions->emplace_back(event.row.Get("topic").ToString(), "1");
  }
  const MonoidAggregator& aggregator() const override { return *agg_; }

 private:
  std::unique_ptr<MonoidAggregator> agg_;
};

TEST(SemanticsTest, Figure8Matrix) {
  using S = StateSemantics;
  using O = OutputSemantics;
  EXPECT_TRUE(IsSupportedCombination(S::kAtLeastOnce, O::kAtLeastOnce));
  EXPECT_TRUE(IsSupportedCombination(S::kExactlyOnce, O::kAtLeastOnce));
  EXPECT_FALSE(IsSupportedCombination(S::kAtMostOnce, O::kAtLeastOnce));
  EXPECT_TRUE(IsSupportedCombination(S::kAtMostOnce, O::kAtMostOnce));
  EXPECT_TRUE(IsSupportedCombination(S::kExactlyOnce, O::kAtMostOnce));
  EXPECT_FALSE(IsSupportedCombination(S::kAtLeastOnce, O::kAtMostOnce));
  EXPECT_TRUE(IsSupportedCombination(S::kExactlyOnce, O::kExactlyOnce));
  EXPECT_FALSE(IsSupportedCombination(S::kAtLeastOnce, O::kExactlyOnce));
  EXPECT_FALSE(IsSupportedCombination(S::kAtMostOnce, O::kExactlyOnce));
}

TEST(WatermarkTest, NoLatenessTracksNow) {
  WatermarkEstimator wm;
  for (int i = 0; i < 100; ++i) {
    wm.Observe(/*event_time=*/i * 1000, /*arrival_time=*/i * 1000);
  }
  EXPECT_EQ(wm.EstimateLowWatermark(500'000, 0.99), 500'000);
}

TEST(WatermarkTest, LatenessQuantileLowersWatermark) {
  WatermarkEstimator wm;
  // 90% of events arrive on time; 10% arrive 10s late.
  for (int i = 0; i < 1000; ++i) {
    const Micros lateness = i % 10 == 0 ? 10 * kMicrosPerSecond : 0;
    wm.Observe(/*event_time=*/0, /*arrival_time=*/lateness);
  }
  const Micros now = 100 * kMicrosPerSecond;
  // At 50% confidence, nothing is late.
  EXPECT_EQ(wm.EstimateLowWatermark(now, 0.5), now);
  // At 99% confidence, the watermark backs off by the late tail.
  EXPECT_EQ(wm.EstimateLowWatermark(now, 0.99), now - 10 * kMicrosPerSecond);
}

TEST(WatermarkTest, EmptyEstimatorReturnsNow) {
  WatermarkEstimator wm;
  EXPECT_EQ(wm.EstimateLowWatermark(1234, 0.9), 1234);
}

TEST(MonoidAggregatorTest, BuiltinsAreMonoid) {
  // Identity and associativity for each canned aggregator.
  for (auto make : {&MakeInt64SumAggregator, &MakeInt64MaxAggregator}) {
    auto agg = make();
    const std::string a = "3";
    const std::string b = "5";
    const std::string c = "7";
    EXPECT_EQ(agg->Combine(agg->Identity(), a), a);
    EXPECT_EQ(agg->Combine(agg->Combine(a, b), c),
              agg->Combine(a, agg->Combine(b, c)));
  }
  auto hll = MakeHllAggregator(10);
  HyperLogLog x(10);
  x.Add("one");
  const std::string xs = x.Serialize();
  EXPECT_EQ(HyperLogLog::Deserialize(hll->Combine(hll->Identity(), xs))
                .Estimate(),
            HyperLogLog::Deserialize(xs).Estimate());
}


// ---------------------------------------------------------------------------
// Windowed processor (watermark-driven tumbling windows).

class CountWindow : public WindowedProcessor {
 public:
  explicit CountWindow(Options options) : WindowedProcessor(options) {}
  std::string GroupKey(const Event& event) const override {
    return event.row.Get("topic").ToString();
  }
  std::string InitialState() const override { return "0"; }
  void Fold(const Event&, std::string* state) const override {
    *state = std::to_string(strtoll(state->c_str(), nullptr, 10) + 1);
  }
  Row Render(Micros window_start, const std::string& group,
             const std::string& state) const override {
    auto schema = Schema::Make({{"window", ValueType::kInt64},
                                {"topic", ValueType::kString},
                                {"count", ValueType::kInt64}});
    return Row(schema,
               {Value(window_start), Value(group),
                Value(static_cast<int64_t>(
                    strtoll(state.c_str(), nullptr, 10)))});
  }
};

Event WindowEvent(Micros event_time, Micros arrival_time,
                  const std::string& topic) {
  Event e;
  e.row = Row(EventSchema(), {Value(event_time), Value(0), Value(topic)});
  e.event_time = event_time;
  e.arrival_time = arrival_time;
  return e;
}

TEST(WindowedProcessorTest, FinalizesOnlyPastTheWatermark) {
  WindowedProcessor::Options options;
  options.window_micros = 10 * kMicrosPerSecond;
  CountWindow processor(options);
  std::vector<Row> out;
  // Window [0, 10s): 3 events; window [10s, 20s): 1 event. All on time.
  for (const Micros t : {1, 2, 3}) {
    processor.Process(WindowEvent(t * kMicrosPerSecond,
                                  t * kMicrosPerSecond, "a"),
                      &out);
  }
  processor.Process(WindowEvent(12 * kMicrosPerSecond,
                                12 * kMicrosPerSecond, "a"),
                    &out);
  // Checkpoint at t=12s: watermark ~12s -> window 0 closes, window 10s stays.
  processor.OnCheckpoint(12 * kMicrosPerSecond, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("window").AsInt64(), 0);
  EXPECT_EQ(out[0].Get("count").AsInt64(), 3);
  EXPECT_EQ(processor.open_windows(), 1u);
  // Later checkpoint closes the second window.
  out.clear();
  processor.OnCheckpoint(25 * kMicrosPerSecond, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("window").AsInt64(), 10 * kMicrosPerSecond);
}

TEST(WindowedProcessorTest, LateEventsCountedUntilFinalized) {
  WindowedProcessor::Options options;
  options.window_micros = 10 * kMicrosPerSecond;
  options.confidence = 0.99;
  CountWindow processor(options);
  std::vector<Row> out;
  // On-time event plus one 3s-late event within the same window: with the
  // lateness observed, the watermark backs off and the straggler counts.
  processor.Process(WindowEvent(1 * kMicrosPerSecond,
                                1 * kMicrosPerSecond, "a"),
                    &out);
  processor.Process(WindowEvent(2 * kMicrosPerSecond,
                                5 * kMicrosPerSecond, "a"),
                    &out);
  processor.OnCheckpoint(12 * kMicrosPerSecond, &out);
  // Watermark = 12s - 3s lateness quantile = 9s < 10s: window stays open.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(processor.open_windows(), 1u);
  // Another late arrival for the open window still lands.
  processor.Process(WindowEvent(8 * kMicrosPerSecond,
                                13 * kMicrosPerSecond, "a"),
                    &out);
  processor.OnCheckpoint(30 * kMicrosPerSecond, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("count").AsInt64(), 3);

  // After finalization, a straggler for the shipped window is counted as
  // dropped, not double-emitted.
  out.clear();
  processor.Process(WindowEvent(9 * kMicrosPerSecond,
                                31 * kMicrosPerSecond, "a"),
                    &out);
  EXPECT_EQ(processor.late_dropped(), 1u);
  processor.OnCheckpoint(60 * kMicrosPerSecond, &out);
  EXPECT_TRUE(out.empty());
}

TEST(WindowedProcessorTest, StateRoundTripsThroughCheckpoint) {
  WindowedProcessor::Options options;
  options.window_micros = kMicrosPerSecond;
  CountWindow a(options);
  std::vector<Row> out;
  for (int i = 0; i < 7; ++i) {
    a.Process(WindowEvent(100, 100, "t" + std::to_string(i % 2)), &out);
  }
  CountWindow b(options);
  ASSERT_TRUE(b.RestoreState(a.SerializeState()).ok());
  std::vector<Row> from_a;
  std::vector<Row> from_b;
  a.FlushAll(&from_a);
  b.FlushAll(&from_b);
  ASSERT_EQ(from_a.size(), from_b.size());
  for (size_t i = 0; i < from_a.size(); ++i) {
    EXPECT_EQ(from_a[i].Get("count").AsInt64(),
              from_b[i].Get("count").AsInt64());
  }
}

TEST(WindowedProcessorTest, GroupsAreIndependent) {
  WindowedProcessor::Options options;
  options.window_micros = kMicrosPerSecond;
  CountWindow processor(options);
  std::vector<Row> out;
  for (int i = 0; i < 6; ++i) {
    processor.Process(WindowEvent(10, 10, i < 4 ? "x" : "y"), &out);
  }
  processor.FlushAll(&out);
  ASSERT_EQ(out.size(), 2u);
  std::map<std::string, int64_t> counts;
  for (const Row& row : out) {
    counts[row.Get("topic").AsString()] = row.Get("count").AsInt64();
  }
  EXPECT_EQ(counts["x"], 4);
  EXPECT_EQ(counts["y"], 2);
}

// ---------------------------------------------------------------------------
// State store tests.

class StateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("stylus_store"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(StateStoreTest, LocalRoundTrip) {
  auto store = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kExactlyOnce, "state-1",
                                   42, nullptr)
                  .ok());
  auto cp = (*store)->Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_TRUE(cp->has_state);
  EXPECT_EQ(cp->state, "state-1");
  EXPECT_TRUE(cp->has_offset);
  EXPECT_EQ(cp->offset, 42u);
}

TEST_F(StateStoreTest, LocalEmptyLoad) {
  auto store = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(store.ok());
  auto cp = (*store)->Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_FALSE(cp->has_state);
  EXPECT_FALSE(cp->has_offset);
}

TEST_F(StateStoreTest, AtLeastOnceCrashLeavesStateAheadOfOffset) {
  auto store = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kAtLeastOnce, "s10", 10,
                                   nullptr)
                  .ok());
  // Crash between the writes of the second checkpoint.
  const Status st = (*store)->SaveCheckpoint(
      StateSemantics::kAtLeastOnce, "s20", 20,
      [](FailurePoint p) { return p == FailurePoint::kBetweenCheckpointWrites; });
  EXPECT_TRUE(st.IsAborted());
  // Reopen (recovery): state is new, offset is old => replay => at-least-once.
  auto reopened = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(reopened.ok());
  auto cp = (*reopened)->Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->state, "s20");
  EXPECT_EQ(cp->offset, 10u);
}

TEST_F(StateStoreTest, AtMostOnceCrashLeavesOffsetAheadOfState) {
  auto store = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kAtMostOnce, "s10", 10,
                                   nullptr)
                  .ok());
  const Status st = (*store)->SaveCheckpoint(
      StateSemantics::kAtMostOnce, "s20", 20,
      [](FailurePoint p) { return p == FailurePoint::kBetweenCheckpointWrites; });
  EXPECT_TRUE(st.IsAborted());
  auto reopened = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(reopened.ok());
  auto cp = (*reopened)->Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->state, "s10");   // Old state...
  EXPECT_EQ(cp->offset, 20u);    // ...newer offset => skipped events.
}

TEST_F(StateStoreTest, ExactlyOnceIsAtomicUnderCrashInjection) {
  auto store = LocalStateStore::Open(dir_ + "/s", nullptr, "");
  ASSERT_TRUE(store.ok());
  int calls = 0;
  ASSERT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kExactlyOnce, "s", 5,
                                   [&calls](FailurePoint) {
                                     ++calls;
                                     return true;
                                   })
                  .ok());
  // The injector is never consulted: there is no between-writes window.
  EXPECT_EQ(calls, 0);
}

TEST_F(StateStoreTest, RemoteStoreRoundTrip) {
  zippydb::ClusterOptions options;
  options.simulate_latency = false;
  auto cluster = zippydb::Cluster::Open(options, dir_ + "/z");
  ASSERT_TRUE(cluster.ok());
  RemoteStateStore store(cluster->get(), "ckpt/test/shard-0");
  ASSERT_TRUE(store
                  .SaveCheckpoint(StateSemantics::kExactlyOnce, "remote-state",
                                  7, nullptr)
                  .ok());
  auto cp = store.Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->state, "remote-state");
  EXPECT_EQ(cp->offset, 7u);
}

TEST_F(StateStoreTest, HdfsBackupAndMachineLossRestore) {
  hdfs::HdfsCluster hdfs(dir_ + "/hdfs");
  {
    auto store = LocalStateStore::Open(dir_ + "/s", &hdfs, "backup/app");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)
                    ->SaveCheckpoint(StateSemantics::kExactlyOnce, "precious",
                                     99, nullptr)
                    .ok());
    ASSERT_TRUE((*store)->BackupToHdfs().ok());
  }
  // Machine loss: the local directory is gone.
  ASSERT_TRUE(RemoveAll(dir_ + "/s").ok());
  ASSERT_TRUE(
      LocalStateStore::RestoreFromHdfs(&hdfs, "backup/app", dir_ + "/s").ok());
  auto restored = LocalStateStore::Open(dir_ + "/s", &hdfs, "backup/app");
  ASSERT_TRUE(restored.ok());
  auto cp = (*restored)->Load();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->state, "precious");
  EXPECT_EQ(cp->offset, 99u);
}

TEST_F(StateStoreTest, BackupSkippedWhenHdfsDown) {
  hdfs::HdfsCluster hdfs(dir_ + "/hdfs");
  auto store = LocalStateStore::Open(dir_ + "/s", &hdfs, "backup/app");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kExactlyOnce, "s0", 0,
                                   nullptr)
                  .ok());
  hdfs.SetAvailable(false);
  EXPECT_TRUE((*store)->BackupToHdfs().IsUnavailable());
  // Local processing continues: checkpoints still work.
  EXPECT_TRUE((*store)
                  ->SaveCheckpoint(StateSemantics::kExactlyOnce, "s", 1,
                                   nullptr)
                  .ok());
}

// ---------------------------------------------------------------------------
// Monoid remote state.

class MonoidStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("monoid");
    agg_ = MakeInt64SumAggregator();
    zippydb::ClusterOptions options;
    options.simulate_latency = false;
    options.merge_operator = std::make_shared<MonoidMergeOperator>(
        std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator()));
    auto cluster = zippydb::Cluster::Open(options, dir_ + "/z");
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string dir_;
  std::unique_ptr<MonoidAggregator> agg_;
  std::unique_ptr<zippydb::Cluster> cluster_;
};

TEST_F(MonoidStateTest, AppendCombinesInMemory) {
  RemoteMonoidState state(cluster_.get(), agg_.get(), "m",
                          RemoteWriteMode::kAppendOnly);
  state.Append("k", "1");
  state.Append("k", "2");
  state.Append("j", "5");
  EXPECT_EQ(state.dirty_keys(), 2u);
  auto merged = state.Read("k");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "3");
}

TEST_F(MonoidStateTest, BothModesProduceIdenticalFinalState) {
  RemoteMonoidState rmw(cluster_.get(), agg_.get(), "rmw",
                        RemoteWriteMode::kReadModifyWrite);
  RemoteMonoidState append(cluster_.get(), agg_.get(), "app",
                           RemoteWriteMode::kAppendOnly);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      const std::string key = "key" + std::to_string(i % 3);
      rmw.Append(key, std::to_string(i));
      append.Append(key, std::to_string(i));
    }
    ASSERT_TRUE(rmw.Flush().ok());
    ASSERT_TRUE(append.Flush().ok());
  }
  for (int i = 0; i < 3; ++i) {
    const std::string key = "key" + std::to_string(i);
    auto a = cluster_->Get("rmw/" + key);
    auto b = cluster_->Get("app/" + key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << key;
  }
}

TEST_F(MonoidStateTest, AppendModeSkipsRemoteReads) {
  RemoteMonoidState state(cluster_.get(), agg_.get(), "m",
                          RemoteWriteMode::kAppendOnly);
  for (int i = 0; i < 20; ++i) {
    state.Append("k" + std::to_string(i), "1");
  }
  cluster_->stats().Reset();
  ASSERT_TRUE(state.Flush().ok());
  EXPECT_EQ(cluster_->stats().reads.load(), 0u);
  EXPECT_EQ(cluster_->stats().merges.load(), 20u);
  EXPECT_EQ(cluster_->stats().writes.load(), 0u);
}

TEST_F(MonoidStateTest, RmwModeReadsAndWrites) {
  RemoteMonoidState state(cluster_.get(), agg_.get(), "m",
                          RemoteWriteMode::kReadModifyWrite);
  for (int i = 0; i < 20; ++i) {
    state.Append("k" + std::to_string(i), "1");
  }
  cluster_->stats().Reset();
  ASSERT_TRUE(state.Flush().ok());
  EXPECT_EQ(cluster_->stats().reads.load(), 20u);
  EXPECT_EQ(cluster_->stats().writes.load(), 20u);
  EXPECT_EQ(cluster_->stats().merges.load(), 0u);
}

TEST_F(MonoidStateTest, FlushClearsDirtySet) {
  RemoteMonoidState state(cluster_.get(), agg_.get(), "m",
                          RemoteWriteMode::kAppendOnly);
  state.Append("k", "1");
  ASSERT_TRUE(state.Flush().ok());
  EXPECT_EQ(state.dirty_keys(), 0u);
  ASSERT_TRUE(state.Flush().ok());  // Idempotent on empty.
  auto v = cluster_->Get("m/k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
}

// ---------------------------------------------------------------------------
// Node runtime: the Figure 7 experiment as unit tests.

class NodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("stylus_node");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig config;
    config.name = "in";
    ASSERT_TRUE(scribe_->CreateCategory(config).ok());
    sink_ = std::make_shared<CollectingSink>();
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  void WriteEvents(int from, int to) {
    TextRowCodec codec(EventSchema());
    for (int i = from; i < to; ++i) {
      Row row(EventSchema(),
              {Value(clock_.NowMicros()), Value(i),
               Value("t" + std::to_string(i % 3))});
      ASSERT_TRUE(scribe_->Write("in", 0, codec.Encode(row)).ok());
    }
  }

  NodeConfig CounterConfig(StateSemantics state, OutputSemantics output) {
    NodeConfig config;
    config.name = "counter";
    config.input_category = "in";
    config.input_schema = EventSchema();
    config.event_time_column = "event_time";
    config.stateful_factory = [] {
      return std::make_unique<CounterProcessor>();
    };
    config.state_semantics = state;
    config.output_semantics = output;
    config.checkpoint_every_events = 10;
    config.backend = StateBackend::kLocal;
    config.state_dir = dir_ + "/state";
    config.sink = sink_;
    return config;
  }

  // Runs until quiescent; crashed shards are recovered and resumed until
  // everything is drained.
  int64_t RunToCompletion(NodeShard* shard) {
    for (int round = 0; round < 1000; ++round) {
      if (!shard->alive()) {
        EXPECT_TRUE(shard->Recover().ok());
      }
      auto result = shard->RunOnce();
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsAborted()) << result.status();
        continue;
      }
      if (result.value() == 0) break;
    }
    return FinalCount();
  }

  // Final counter value = last emitted count row (0 for non-counter sinks).
  int64_t FinalCount() {
    auto rows = sink_->rows();
    if (rows.empty()) return 0;
    return rows.back().Get("count").CoerceInt64();
  }

  SimClock clock_{1'000'000};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
  std::shared_ptr<CollectingSink> sink_;
};

TEST_F(NodeTest, NoFailureAllSemanticsAgree) {
  WriteEvents(0, 100);  // All shards replay the same 100 events.
  for (const auto& [state, output] :
       {std::pair{StateSemantics::kAtLeastOnce, OutputSemantics::kAtLeastOnce},
        std::pair{StateSemantics::kAtMostOnce, OutputSemantics::kAtMostOnce},
        std::pair{StateSemantics::kExactlyOnce,
                  OutputSemantics::kAtLeastOnce}}) {
    sink_->Clear();
    NodeConfig config = CounterConfig(state, output);
    config.name = std::string("counter-") + ToString(state);
    auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
    ASSERT_TRUE(shard.ok()) << shard.status();
    EXPECT_EQ(RunToCompletion(shard->get()), 100);
  }
}

TEST_F(NodeTest, Figure7AtLeastOnceOvercounts) {
  auto shard = NodeShard::Create(
      CounterConfig(StateSemantics::kAtLeastOnce,
                    OutputSemantics::kAtLeastOnce),
      scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  int between = 0;
  (*shard)->SetFailureInjector([&between](FailurePoint p) {
    return p == FailurePoint::kBetweenCheckpointWrites && ++between == 3;
  });
  WriteEvents(0, 100);
  const int64_t final_count = RunToCompletion(shard->get());
  // State (30 counted) persisted but offset stayed at 20: events 20..29
  // replay and are double counted.
  EXPECT_EQ(final_count, 110);
}

TEST_F(NodeTest, Figure7AtMostOnceUndercounts) {
  auto shard = NodeShard::Create(
      CounterConfig(StateSemantics::kAtMostOnce,
                    OutputSemantics::kAtMostOnce),
      scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  int between = 0;
  (*shard)->SetFailureInjector([&between](FailurePoint p) {
    return p == FailurePoint::kBetweenCheckpointWrites && ++between == 3;
  });
  WriteEvents(0, 100);
  const int64_t final_count = RunToCompletion(shard->get());
  // Offset (30) persisted but state stayed at 20: events 20..29 are lost.
  EXPECT_EQ(final_count, 90);
}

TEST_F(NodeTest, Figure7ExactlyOnceMatchesIdeal) {
  auto shard = NodeShard::Create(
      CounterConfig(StateSemantics::kExactlyOnce,
                    OutputSemantics::kAtLeastOnce),
      scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  // Crash after processing instead (no between-writes window exists): the
  // whole interval replays and the atomic checkpoint keeps counts exact.
  int after = 0;
  (*shard)->SetFailureInjector([&after](FailurePoint p) {
    return p == FailurePoint::kAfterProcessing && ++after == 3;
  });
  WriteEvents(0, 100);
  const int64_t final_count = RunToCompletion(shard->get());
  EXPECT_EQ(final_count, 100);
}

TEST_F(NodeTest, AtLeastOnceOutputDuplicatesOnCrash) {
  NodeConfig config = CounterConfig(StateSemantics::kAtLeastOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.name = "pass";
  config.stateful_factory = nullptr;
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  config.backend = StateBackend::kNone;
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok()) << shard.status();
  int after = 0;
  (*shard)->SetFailureInjector([&after](FailurePoint p) {
    return p == FailurePoint::kAfterProcessing && ++after == 1;
  });
  WriteEvents(0, 30);
  RunToCompletion(shard->get());
  // First interval (10 events) emitted, crashed before checkpoint, then
  // replayed and emitted again: 40 rows for 30 events.
  EXPECT_EQ(sink_->size(), 40u);
}

TEST_F(NodeTest, AtMostOnceOutputLosesButNeverDuplicates) {
  NodeConfig config = CounterConfig(StateSemantics::kAtMostOnce,
                                    OutputSemantics::kAtMostOnce);
  config.name = "pass";
  config.stateful_factory = nullptr;
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  config.backend = StateBackend::kNone;
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok()) << shard.status();
  int after_ckpt = 0;
  (*shard)->SetFailureInjector([&after_ckpt](FailurePoint p) {
    return p == FailurePoint::kAfterCheckpoint && ++after_ckpt == 1;
  });
  WriteEvents(0, 30);
  RunToCompletion(shard->get());
  // One interval's output was lost after its offset was committed.
  EXPECT_EQ(sink_->size(), 20u);
}

TEST_F(NodeTest, ExactlyOnceOutputIntoTransactionalStore) {
  zippydb::ClusterOptions options;
  options.simulate_latency = false;
  auto cluster = zippydb::Cluster::Open(options, dir_ + "/z");
  ASSERT_TRUE(cluster.ok());

  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kExactlyOnce);
  config.name = "eo";
  config.stateful_factory = nullptr;
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  config.backend = StateBackend::kRemote;
  config.remote = cluster->get();
  config.sink = std::make_shared<ZippyDbSink>(
      cluster->get(), "out", std::vector<std::string>{"id"},
      std::vector<std::string>{"topic"});
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok()) << shard.status();
  int after = 0;
  (*shard)->SetFailureInjector([&after](FailurePoint p) {
    return p == FailurePoint::kAfterProcessing && ++after == 2;
  });
  WriteEvents(0, 50);
  RunToCompletion(shard->get());
  // Every event's output row is present exactly once (keys are unique) and
  // none are missing.
  auto rows = (*cluster)->ScanPrefix("out/");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
}

TEST_F(NodeTest, ScribeSinkRejectsExactlyOnce) {
  scribe::CategoryConfig out;
  out.name = "out";
  ASSERT_TRUE(scribe_->CreateCategory(out).ok());
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kExactlyOnce);
  config.sink = std::make_shared<ScribeSink>(
      scribe_.get(), "out", EventSchema(), std::vector<std::string>{"id"});
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  EXPECT_FALSE(shard.ok());  // "the receiver must be a data store".
}

TEST_F(NodeTest, InvalidSemanticsComboRejected) {
  auto shard = NodeShard::Create(
      CounterConfig(StateSemantics::kAtMostOnce,
                    OutputSemantics::kAtLeastOnce),
      scribe_.get(), &clock_, 0);
  EXPECT_FALSE(shard.ok());
}

TEST_F(NodeTest, RequiresExactlyOneFactory) {
  NodeConfig config = CounterConfig(StateSemantics::kAtLeastOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  EXPECT_FALSE(NodeShard::Create(config, scribe_.get(), &clock_, 0).ok());
  config.stateless_factory = nullptr;
  config.stateful_factory = nullptr;
  EXPECT_FALSE(NodeShard::Create(config, scribe_.get(), &clock_, 0).ok());
}

TEST_F(NodeTest, HdfsBackupDuringProcessingAndMachineLoss) {
  hdfs::HdfsCluster hdfs(dir_ + "/hdfs");
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.hdfs = &hdfs;
  config.backup_every_checkpoints = 2;
  {
    auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
    ASSERT_TRUE(shard.ok());
    WriteEvents(0, 100);
    RunToCompletion(shard->get());
    EXPECT_EQ(FinalCount(), 100);
  }
  // Machine loss: local state directory destroyed.
  ASSERT_TRUE(RemoveAll(config.state_dir).ok());
  ASSERT_TRUE(LocalStateStore::RestoreFromHdfs(
                  &hdfs, "backup/counter/shard-0",
                  config.state_dir + "/counter/shard-0")
                  .ok());
  sink_->Clear();
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  WriteEvents(100, 120);
  RunToCompletion(shard->get());
  // The backup held at least the first 100 events' checkpoint (every 2nd
  // checkpoint); the final count must cover all 120 with no loss, with
  // possible replay of the tail after the last backup.
  EXPECT_GE(FinalCount(), 120);
}

TEST_F(NodeTest, DegradedModeQueuesBackupsAndResyncsOnRecovery) {
  hdfs::HdfsCluster hdfs(dir_ + "/hdfs");
  NodeConfig config = CounterConfig(StateSemantics::kAtLeastOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.hdfs = &hdfs;
  config.backup_every_checkpoints = 1;
  config.max_pending_backups = 2;
  {
    auto shard_or = NodeShard::Create(config, scribe_.get(), &clock_, 0);
    ASSERT_TRUE(shard_or.ok());
    NodeShard* shard = shard_or->get();

    WriteEvents(0, 20);  // Two checkpoints, two on-schedule backups.
    RunToCompletion(shard);
    BackupHealth h = shard->GetBackupHealth();
    EXPECT_FALSE(h.degraded);
    EXPECT_EQ(h.backups_completed, 2u);
    EXPECT_EQ(h.pending_backups, 0u);

    // HDFS outage (§4.4.2): processing continues, missed backups accumulate
    // in the bounded pending queue.
    hdfs.SetAvailable(false);
    WriteEvents(20, 70);  // Five checkpoints, all missing their backups.
    EXPECT_EQ(RunToCompletion(shard), 70);  // No events lost to the outage.
    h = shard->GetBackupHealth();
    EXPECT_TRUE(h.degraded);
    EXPECT_GT(h.degraded_since, 0);
    EXPECT_EQ(h.pending_backups, 2u);  // Bounded by max_pending_backups.
    EXPECT_EQ(h.backups_dropped, 3u);
    EXPECT_EQ(h.backups_completed, 2u);

    // HDFS recovers: the next (event-less) round resyncs the pending queue.
    hdfs.SetAvailable(true);
    clock_.AdvanceMicros(1000);
    auto drained = shard->RunOnce();
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained.value(), 0u);
    h = shard->GetBackupHealth();
    EXPECT_FALSE(h.degraded);
    EXPECT_EQ(h.degraded_since, 0);
    EXPECT_GT(h.degraded_micros_total, 0);
    EXPECT_EQ(h.pending_backups, 0u);
    EXPECT_EQ(h.backups_resynced, 2u);
  }

  // The resynced backup is complete: machine loss + restore-from-HDFS
  // yields the full post-outage state (count 70 at offset 70).
  ASSERT_TRUE(RemoveAll(config.state_dir).ok());
  ASSERT_TRUE(LocalStateStore::RestoreFromHdfs(
                  &hdfs, "backup/counter/shard-0",
                  config.state_dir + "/counter/shard-0")
                  .ok());
  auto restored = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(restored.ok());
  WriteEvents(70, 80);
  RunToCompletion(restored->get());
  EXPECT_GE(FinalCount(), 80);
}

TEST_F(NodeTest, MonoidNodeCountsPerTopic) {
  zippydb::ClusterOptions zopt;
  zopt.simulate_latency = false;
  zopt.merge_operator = std::make_shared<MonoidMergeOperator>(
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator()));
  auto cluster = zippydb::Cluster::Open(zopt, dir_ + "/z");
  ASSERT_TRUE(cluster.ok());

  NodeConfig config;
  config.name = "topics";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.event_time_column = "event_time";
  config.monoid_factory = [] {
    return std::make_unique<TopicCountProcessor>();
  };
  config.monoid_aggregator =
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator());
  config.remote = cluster->get();
  config.remote_mode = RemoteWriteMode::kAppendOnly;
  config.checkpoint_every_events = 16;
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok()) << shard.status();
  WriteEvents(0, 90);  // Topics t0,t1,t2 x 30 each.
  RunToCompletion(shard->get());
  for (int t = 0; t < 3; ++t) {
    auto v = (*cluster)->Get("mono/topics/t" + std::to_string(t));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "30");
  }
}

TEST_F(NodeTest, MonoidCrashIsAtLeastOnce) {
  zippydb::ClusterOptions zopt;
  zopt.simulate_latency = false;
  zopt.merge_operator = std::make_shared<MonoidMergeOperator>(
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator()));
  auto cluster = zippydb::Cluster::Open(zopt, dir_ + "/z");
  ASSERT_TRUE(cluster.ok());

  NodeConfig config;
  config.name = "topics";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.monoid_factory = [] {
    return std::make_unique<TopicCountProcessor>();
  };
  config.monoid_aggregator =
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator());
  config.remote = cluster->get();
  config.checkpoint_every_events = 10;
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  int between = 0;
  (*shard)->SetFailureInjector([&between](FailurePoint p) {
    return p == FailurePoint::kBetweenCheckpointWrites && ++between == 2;
  });
  WriteEvents(0, 60);
  RunToCompletion(shard->get());
  int64_t total = 0;
  for (int t = 0; t < 3; ++t) {
    auto v = (*cluster)->Get("mono/topics/t" + std::to_string(t));
    ASSERT_TRUE(v.ok());
    total += strtoll(v->c_str(), nullptr, 10);
  }
  // One interval of 10 events was flushed twice: 60 + 10.
  EXPECT_EQ(total, 70);
}


TEST_F(NodeTest, ByteBasedCheckpointTriggerSplitsIntervals) {
  // §2.3/§4.3: checkpoints every B bytes. With a small byte budget the
  // engine must split polled batches and push the remainder back.
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.checkpoint_every_events = 1000;  // Effectively unlimited.
  config.checkpoint_every_bytes = 64;     // ~3-4 rows per interval.
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok()) << shard.status();
  WriteEvents(0, 40);
  size_t intervals = 0;
  while (true) {
    auto n = (*shard)->RunOnce();
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    EXPECT_LT(*n, 40u);  // Byte budget forces multiple intervals.
    ++intervals;
  }
  EXPECT_GT(intervals, 4u);
  EXPECT_EQ(FinalCount(), 40);
  EXPECT_EQ((*shard)->checkpoints_completed(), intervals);
}

TEST_F(NodeTest, WatermarkReflectsStreamLateness) {
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kAtLeastOnce);
  auto shard = NodeShard::Create(config, scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  // Events whose event_time is 5s behind the (sim) arrival clock.
  TextRowCodec codec(EventSchema());
  for (int i = 0; i < 50; ++i) {
    Row row(EventSchema(),
            {Value(clock_.NowMicros() - 5 * kMicrosPerSecond), Value(i),
             Value("t")});
    ASSERT_TRUE(scribe_->Write("in", 0, codec.Encode(row)).ok());
  }
  while (true) {
    auto n = (*shard)->RunOnce();
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }
  const Micros wm = (*shard)->LowWatermark();
  EXPECT_LE(wm, clock_.NowMicros() - 5 * kMicrosPerSecond + 1);
  EXPECT_EQ((*shard)->watermark().num_observations(), 50u);
}

TEST_F(NodeTest, RunOnceOnDeadShardFails) {
  auto shard = NodeShard::Create(
      CounterConfig(StateSemantics::kExactlyOnce,
                    OutputSemantics::kAtLeastOnce),
      scribe_.get(), &clock_, 0);
  ASSERT_TRUE(shard.ok());
  (*shard)->Crash();
  EXPECT_FALSE((*shard)->alive());
  EXPECT_FALSE((*shard)->RunOnce().ok());
  ASSERT_TRUE((*shard)->Recover().ok());
  EXPECT_TRUE((*shard)->RunOnce().ok());
  // Recover on a live shard is a no-op.
  ASSERT_TRUE((*shard)->Recover().ok());
}

// ---------------------------------------------------------------------------
// Pipelines (DAGs).

TEST_F(NodeTest, PipelineTwoNodeDagWithIndependentFailure) {
  scribe::CategoryConfig mid;
  mid.name = "mid";
  mid.num_buckets = 1;
  ASSERT_TRUE(scribe_->CreateCategory(mid).ok());

  Pipeline pipeline(scribe_.get(), &clock_);

  // Node 1: passthrough in -> mid.
  NodeConfig n1;
  n1.name = "filterer";
  n1.input_category = "in";
  n1.input_schema = EventSchema();
  n1.stateless_factory = [] {
    return std::make_unique<PassthroughProcessor>();
  };
  n1.backend = StateBackend::kNone;
  n1.state_dir = dir_ + "/state";
  n1.sink = std::make_shared<ScribeSink>(scribe_.get(), "mid", EventSchema(),
                                         std::vector<std::string>{"topic"});
  ASSERT_TRUE(pipeline.AddNode(n1).ok());

  // Node 2: counter over mid.
  NodeConfig n2 = CounterConfig(StateSemantics::kExactlyOnce,
                                OutputSemantics::kAtLeastOnce);
  n2.input_category = "mid";
  ASSERT_TRUE(pipeline.AddNode(n2).ok());

  WriteEvents(0, 50);
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  EXPECT_EQ(FinalCount(), 50);

  // Crash the counter; the filterer keeps consuming new input.
  NodeShard* counter = pipeline.Shard("counter", 0);
  ASSERT_NE(counter, nullptr);
  counter->Crash();
  WriteEvents(50, 80);
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  // Filterer progressed: mid now holds all 80 rows.
  auto mid_next = scribe_->NextSequence("mid", 0);
  ASSERT_TRUE(mid_next.ok());
  EXPECT_EQ(*mid_next, 80u);

  // Recover the counter: it resumes from its checkpoint and catches up.
  ASSERT_TRUE(pipeline.RecoverAll().ok());
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  EXPECT_EQ(FinalCount(), 80);
}

TEST_F(NodeTest, PipelineLagMonitoringAndAlerts) {
  Pipeline pipeline(scribe_.get(), &clock_);
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kAtLeastOnce);
  ASSERT_TRUE(pipeline.AddNode(config).ok());
  WriteEvents(0, 500);
  auto lag = pipeline.GetProcessingLag();
  ASSERT_EQ(lag.size(), 1u);
  EXPECT_EQ(lag[0].lag_messages, 500u);
  EXPECT_EQ(pipeline.GetLagAlerts(100).size(), 1u);
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  EXPECT_TRUE(pipeline.GetLagAlerts(1).empty());
}

TEST_F(NodeTest, PipelineShardedNodeProcessesAllBuckets) {
  scribe::CategoryConfig wide;
  wide.name = "wide";
  wide.num_buckets = 4;
  ASSERT_TRUE(scribe_->CreateCategory(wide).ok());
  TextRowCodec codec(EventSchema());
  for (int i = 0; i < 200; ++i) {
    Row row(EventSchema(), {Value(0), Value(i), Value("t")});
    ASSERT_TRUE(scribe_->WriteSharded("wide", std::to_string(i),
                                      codec.Encode(row))
                    .ok());
  }
  Pipeline pipeline(scribe_.get(), &clock_);
  NodeConfig config = CounterConfig(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kAtLeastOnce);
  config.input_category = "wide";
  ASSERT_TRUE(pipeline.AddNode(config).ok());
  EXPECT_EQ(pipeline.Shards("counter").size(), 4u);
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  // Across shards, all 200 events were counted (sum of last counts).
  int64_t total = 0;
  std::map<int64_t, int64_t> best;  // Shard-less sink: take max per shard
                                    // unavailable; sum final counters via
                                    // emitted rows is ambiguous — instead
                                    // verify lag is zero everywhere.
  (void)best;
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
    ++total;
  }
  EXPECT_EQ(total, 4);
}

// ---------------------------------------------------------------------------
// Batch (backfill) equivalence.

TEST(BatchTest, MonoidStreamingAndBatchAgree) {
  const std::string dir = MakeTempDir("stylus_batch");
  SchemaPtr schema = EventSchema();

  // Build a day of data in Hive and the same data in Scribe.
  hive::Hive hive(dir + "/hive");
  ASSERT_TRUE(hive.CreateTable("events", schema).ok());
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "in";
  ASSERT_TRUE(bus.CreateCategory(config).ok());

  TextRowCodec codec(schema);
  std::vector<Row> day;
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    Row row(schema, {Value(int64_t{i}), Value(i),
                     Value("topic" + std::to_string(rng.Uniform(7)))});
    day.push_back(row);
    ASSERT_TRUE(bus.Write("in", 0, codec.Encode(row)).ok());
  }
  ASSERT_TRUE(hive.WritePartition("events", "2016-01-01", day).ok());
  ASSERT_TRUE(hive.LandPartition("events", "2016-01-01").ok());

  // Streaming run.
  zippydb::ClusterOptions zopt;
  zopt.simulate_latency = false;
  zopt.merge_operator = std::make_shared<MonoidMergeOperator>(
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator()));
  auto cluster = zippydb::Cluster::Open(zopt, dir + "/z");
  ASSERT_TRUE(cluster.ok());
  NodeConfig node;
  node.name = "topics";
  node.input_category = "in";
  node.input_schema = schema;
  node.event_time_column = "event_time";
  node.monoid_factory = [] { return std::make_unique<TopicCountProcessor>(); };
  node.monoid_aggregator =
      std::shared_ptr<const MonoidAggregator>(MakeInt64SumAggregator());
  node.remote = cluster->get();
  auto shard = NodeShard::Create(node, &bus, &clock, 0);
  ASSERT_TRUE(shard.ok());
  while (true) {
    auto n = (*shard)->RunOnce();
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }

  // Batch run over Hive with the same processor code.
  auto agg = MakeInt64SumAggregator();
  hive::MapReduceCounters counters;
  auto batch = RunMonoidBatch(
      hive, "events", {"2016-01-01"},
      [] { return std::make_unique<TopicCountProcessor>(); }, *agg, schema,
      "event_time", &counters);
  ASSERT_TRUE(batch.ok()) << batch.status();

  // Same totals per topic.
  ASSERT_EQ(batch->size(), 7u);
  for (const auto& [topic, value] : *batch) {
    auto streaming = (*cluster)->Get("mono/topics/" + topic);
    ASSERT_TRUE(streaming.ok()) << topic;
    EXPECT_EQ(*streaming, value) << topic;
  }
  // Map-side combine shrank the shuffle to one record per topic.
  EXPECT_EQ(counters.shuffle_records, 7u);
  EXPECT_EQ(counters.map_input_rows, 300u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(BatchTest, StatelessBatchRunsMapperOverPartitions) {
  const std::string dir = MakeTempDir("stylus_batch2");
  SchemaPtr schema = EventSchema();
  hive::Hive hive(dir + "/hive");
  ASSERT_TRUE(hive.CreateTable("events", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.emplace_back(schema, std::vector<Value>{Value(int64_t{i}), Value(i),
                                                 Value("t")});
  }
  ASSERT_TRUE(hive.WritePartition("events", "2016-01-01", rows).ok());
  ASSERT_TRUE(hive.LandPartition("events", "2016-01-01").ok());
  auto output = RunStatelessBatch(
      hive, "events", {"2016-01-01"},
      [] { return std::make_unique<PassthroughProcessor>(); }, schema,
      "event_time");
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->size(), 10u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(BatchTest, StatefulBatchGroupsAndReplaysInEventTimeOrder) {
  const std::string dir = MakeTempDir("stylus_batch3");
  SchemaPtr schema = EventSchema();
  hive::Hive hive(dir + "/hive");
  ASSERT_TRUE(hive.CreateTable("events", schema).ok());
  std::vector<Row> rows;
  // Deliberately out of event-time order.
  for (const int t : {5, 1, 3, 2, 4}) {
    rows.emplace_back(schema, std::vector<Value>{Value(int64_t{t}), Value(t),
                                                 Value("k")});
  }
  ASSERT_TRUE(hive.WritePartition("events", "2016-01-01", rows).ok());
  ASSERT_TRUE(hive.LandPartition("events", "2016-01-01").ok());

  auto output = RunStatefulBatch(
      hive, "events", {"2016-01-01"},
      [] { return std::make_unique<CounterProcessor>(); }, schema,
      "event_time",
      [](const Row& row) { return row.Get("topic").ToString(); });
  ASSERT_TRUE(output.ok());
  // One group ("k"), final OnCheckpoint emission reports 5 events.
  ASSERT_FALSE(output->empty());
  EXPECT_EQ(output->back().Get("count").AsInt64(), 5);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::stylus
