// Process-crash recovery tests: the durable pipeline manifest, kill-mode
// fault sites, and the fork/kill/restart chaos harness.
//
// The harness is the supervisor of a real crash loop: it forks a child that
// builds (or Recover()s) a pipeline over persisted Scribe categories, arms a
// randomized kill site via FBSTREAM_KILL_SPEC, and lets the child run until
// either it drains or _exit(137) fires mid-write. The supervisor restarts it
// round after round, then differentially checks the surviving output against
// a golden no-crash run of the identical input:
//   exactly-once   — byte-identical output and state (Fig 7 "exact"),
//   at-least-once  — output is a superset (duplicates allowed, no loss),
//   at-most-once   — output is a subset (loss allowed, no duplicates).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/shutdown.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "core/sink.h"
#include "storage/hdfs/hdfs.h"
#include "storage/lsm/db.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::stylus {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"topic", ValueType::kString}});
}

// Counts events in its state and emits one row per event ("e" rows) plus a
// running count at each checkpoint ("c" rows). Per-event rows are what the
// differential checks compare — they are independent of where checkpoint
// boundaries land, so an exactly-once run is byte-identical to golden no
// matter how many times it was killed.
class TallyProcessor : public StatefulProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    ++count_;
    out->push_back(Row(EventSchema(),
                       {Value(event.row.Get("event_time").CoerceInt64()),
                        Value(event.row.Get("id").CoerceInt64()),
                        Value(event.row.Get("topic").ToString())}));
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* /*out*/) override {}
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

// Transactional sink for exactly-once output into the shard's own local LSM
// (the checkpoint and the output rows commit in one WriteBatch, §4.3.1
// activity (c)). Keys are "out/<id>" so the supervisor can dump and diff
// them after the child is dead.
class LsmOutputSink : public OutputSink {
 public:
  Status Emit(const Row& /*row*/) override {
    return Status::FailedPrecondition("transactional sink: use checkpoint");
  }
  bool SupportsTransactions() const override { return true; }
  Status AppendToTransaction(const std::vector<Row>& rows,
                             lsm::WriteBatch* batch) override {
    for (const Row& row : rows) {
      batch->Put("out/" + std::to_string(row.Get("id").CoerceInt64()),
                 row.Get("topic").ToString());
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Manifest serde.

ManifestNodeRecord SampleRecord(const std::string& name) {
  ManifestNodeRecord record;
  record.name = name;
  record.input_category = "in";
  record.num_shards = 2;
  record.state_semantics = StateSemantics::kExactlyOnce;
  record.output_semantics = OutputSemantics::kAtLeastOnce;
  record.backend = StateBackend::kLocal;
  record.state_dir = "/tmp/state/" + name;
  record.checkpoint_every_events = 7;
  record.checkpoint_every_bytes = 1024;
  record.backup_every_checkpoints = 3;
  record.max_pending_backups = 5;
  return record;
}

TEST(ManifestTest, RoundTrip) {
  PipelineManifest manifest;
  manifest.epoch = 42;
  manifest.nodes.push_back(SampleRecord("a"));
  manifest.nodes.push_back(SampleRecord("b"));
  manifest.nodes[1].state_semantics = StateSemantics::kAtMostOnce;
  manifest.nodes[1].output_semantics = OutputSemantics::kAtMostOnce;
  manifest.nodes[1].backend = StateBackend::kNone;

  auto decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->epoch, 42u);
  ASSERT_EQ(decoded->nodes.size(), 2u);
  const ManifestNodeRecord& a = decoded->nodes[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.input_category, "in");
  EXPECT_EQ(a.num_shards, 2);
  EXPECT_EQ(a.state_semantics, StateSemantics::kExactlyOnce);
  EXPECT_EQ(a.output_semantics, OutputSemantics::kAtLeastOnce);
  EXPECT_EQ(a.backend, StateBackend::kLocal);
  EXPECT_EQ(a.state_dir, "/tmp/state/a");
  EXPECT_EQ(a.checkpoint_every_events, 7u);
  EXPECT_EQ(a.checkpoint_every_bytes, 1024u);
  EXPECT_EQ(a.backup_every_checkpoints, 3);
  EXPECT_EQ(a.max_pending_backups, 5u);
  EXPECT_EQ(decoded->nodes[1].backend, StateBackend::kNone);
}

TEST(ManifestTest, SaveLoadThroughDisk) {
  const std::string dir = MakeTempDir("manifest");
  EXPECT_TRUE(LoadManifest(dir).status().IsNotFound());
  PipelineManifest manifest;
  manifest.epoch = 7;
  manifest.nodes.push_back(SampleRecord("n"));
  ASSERT_TRUE(SaveManifest(dir, manifest).ok());
  auto loaded = LoadManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 7u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ManifestTest, CorruptionIsDetected) {
  const std::string dir = MakeTempDir("manifest");
  PipelineManifest manifest;
  manifest.nodes.push_back(SampleRecord("n"));
  ASSERT_TRUE(SaveManifest(dir, manifest).ok());

  const std::string path = dir + "/" + kManifestFileName;
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  // Flip one byte inside the body: the checksum must catch it.
  std::string corrupt = *data;
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, corrupt).ok());
  EXPECT_TRUE(LoadManifest(dir).status().code() == StatusCode::kCorruption);
  // Garbage that is not even a frame.
  ASSERT_TRUE(WriteFileAtomic(path, "not a manifest").ok());
  EXPECT_TRUE(LoadManifest(dir).status().code() == StatusCode::kCorruption);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ManifestTest, TornOffsetsSnapshotIsIgnored) {
  const std::string dir = MakeTempDir("offsets");
  EXPECT_TRUE(LoadOffsetsSnapshot(dir).empty());

  std::vector<ShardOffsetRecord> offsets = {{"n", 0, 17}, {"n", 1, 23}};
  ASSERT_TRUE(SaveOffsetsSnapshot(dir, offsets).ok());
  auto loaded = LoadOffsetsSnapshot(dir);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].offset, 23u);

  // A torn write (truncated file) is advisory data gone bad: recovery must
  // shrug it off, not fail.
  const std::string path = dir + "/" + kOffsetsFileName;
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFileAtomic(path, data->substr(0, data->size() / 2)).ok());
  EXPECT_TRUE(LoadOffsetsSnapshot(dir).empty());
  ASSERT_TRUE(WriteFileAtomic(path, "garbage").ok());
  EXPECT_TRUE(LoadOffsetsSnapshot(dir).empty());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// ---------------------------------------------------------------------------
// Kill-mode fault sites.

TEST(KillSwitchTest, EnvParsing) {
  auto* faults = FaultRegistry::Global();
  ::unsetenv(FaultRegistry::kKillSpecEnvVar);
  faults->Reset();
  EXPECT_FALSE(faults->ArmKillFromEnvironment());
  ::setenv(FaultRegistry::kKillSpecEnvVar, "missing-hash", 1);
  EXPECT_FALSE(faults->ArmKillFromEnvironment());
  ::setenv(FaultRegistry::kKillSpecEnvVar, "site#notanumber", 1);
  EXPECT_FALSE(faults->ArmKillFromEnvironment());
  ::unsetenv(FaultRegistry::kKillSpecEnvVar);
  faults->Reset();
}

TEST(KillSwitchTest, ResetDisarmsKill) {
  auto* faults = FaultRegistry::Global();
  faults->ArmKillAt("kill.test.disarm", 0);
  faults->Reset();
  // If Reset failed to disarm, this Hit would _exit(137) and the whole test
  // binary would vanish — surviving it IS the assertion.
  EXPECT_TRUE(faults->Hit("kill.test.disarm").ok());
}

TEST(KillSwitchTest, ArmedChildDiesAtScheduledHit) {
  // hit index 1 = the second hit fires. The first child survives one hit and
  // exits 42; the second child hits twice and must die with the kill code.
  ::setenv(FaultRegistry::kKillSpecEnvVar, "kill.test.site#1", 1);
  for (const int hits : {1, 2}) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      auto* faults = FaultRegistry::Global();
      faults->Reset();
      if (!faults->ArmKillFromEnvironment()) ::_exit(99);
      for (int i = 0; i < hits; ++i) {
        (void)faults->Hit("kill.test.site");
      }
      ::_exit(42);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status),
              hits == 1 ? 42 : FaultRegistry::kKillExitCode);
  }
  ::unsetenv(FaultRegistry::kKillSpecEnvVar);
}

// ---------------------------------------------------------------------------
// Fork/kill/restart chaos harness.

constexpr int kInputBuckets = 2;
constexpr Micros kChildClockStart = 1'000'000'000'000;  // After any write.

int CrashRounds() {
  const char* env = std::getenv("FBSTREAM_CRASH_ROUNDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  return n > 0 ? n : 25;
}

scribe::CategoryConfig PersistedCategory(const std::string& name) {
  scribe::CategoryConfig config;
  config.name = name;
  config.num_buckets = kInputBuckets;
  config.persist_to_disk = true;
  config.fsync_appends = true;  // Acked input must survive the kill.
  return config;
}

// The driver a child process runs: rebuild the pipeline (Recover if a
// manifest exists, fresh deploy otherwise), drain everything visible, exit
// cleanly — unless the armed kill site fires first.
void RunDriverChild(const std::string& root, StateSemantics state,
                    OutputSemantics output) {
  auto* faults = FaultRegistry::Global();
  faults->Reset();
  (void)faults->ArmKillFromEnvironment();

  SimClock clock(kChildClockStart);
  scribe::Scribe scribe(&clock, root + "/scribe");
  if (!scribe.CreateCategory(PersistedCategory("in")).ok()) ::_exit(3);
  if (output != OutputSemantics::kExactlyOnce &&
      !scribe.CreateCategory(PersistedCategory("out")).ok()) {
    ::_exit(3);
  }
  hdfs::HdfsCluster hdfs(root + "/hdfs");

  auto base_config = [&](const ManifestNodeRecord&) -> StatusOr<NodeConfig> {
    NodeConfig config;
    config.name = "tally";
    config.input_category = "in";
    config.input_schema = EventSchema();
    config.event_time_column = "event_time";
    config.stateful_factory = [] { return std::make_unique<TallyProcessor>(); };
    config.state_semantics = state;
    config.output_semantics = output;
    config.checkpoint_every_events = 7;  // Several checkpoints per round.
    config.backend = StateBackend::kLocal;
    config.state_dir = root + "/state";
    config.hdfs = &hdfs;
    config.backup_every_checkpoints = 2;
    if (output == OutputSemantics::kExactlyOnce) {
      config.sink = std::make_shared<LsmOutputSink>();
    } else {
      config.sink = std::make_shared<ScribeSink>(
          &scribe, "out", EventSchema(), std::vector<std::string>{"id"});
    }
    return config;
  };

  // Continuous engine with commit overlap: kills land mid-overlap too (the
  // shard already processing batch N+1 while batch N's checkpoint commits),
  // which is exactly the window the §4.2 overlap must keep recoverable.
  Pipeline::Options options;
  options.overlap_commits = true;
  options.commit_threads = 2;
  options.idle_sleep_micros = 100;
  Pipeline pipeline(&scribe, &clock, options);
  const std::string manifest_dir = root + "/manifest";
  if (FileExists(manifest_dir + "/" + kManifestFileName)) {
    const Status st = pipeline.Recover(manifest_dir, base_config);
    if (!st.ok()) ::_exit(4);
  } else {
    auto config = base_config(ManifestNodeRecord{});
    if (!config.ok() || !pipeline.AddNode(*config).ok()) ::_exit(5);
    if (!pipeline.EnableManifest(manifest_dir).ok()) ::_exit(6);
  }
  if (!pipeline.Start().ok()) ::_exit(7);
  auto drained = pipeline.WaitUntilQuiescent(/*timeout_ms=*/60'000);
  if (!drained.ok()) ::_exit(7);
  if (!pipeline.Stop().ok()) ::_exit(7);
  ::_exit(0);
}

class CrashHarness {
 public:
  CrashHarness(std::string root, StateSemantics state, OutputSemantics output)
      : root_(std::move(root)), state_(state), output_(output) {}

  // Supervisor-side append: a short-lived Scribe recovers the persisted
  // category from disk and extends it. Only runs while no child is alive, so
  // the on-disk segments have exactly one writer at a time.
  void AppendInput(int64_t from, int64_t to) {
    SimClock clock(1'000'000 + static_cast<Micros>(from));
    scribe::Scribe scribe(&clock, root_ + "/scribe");
    ASSERT_TRUE(scribe.CreateCategory(PersistedCategory("in")).ok());
    TextRowCodec codec(EventSchema());
    for (int64_t i = from; i < to; ++i) {
      Row row(EventSchema(), {Value(clock.NowMicros()), Value(i),
                              Value("t" + std::to_string(i % 3))});
      ASSERT_TRUE(
          scribe.Write("in", static_cast<int>(i % kInputBuckets),
                       codec.Encode(row))
              .ok());
    }
  }

  // Forks a driver child and returns its exit code (-1 on abnormal death).
  int RunChild() {
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      RunDriverChild(root_, state_, output_);  // Never returns.
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  // Reads the "out" Scribe category back from disk: id -> emission count.
  std::map<int64_t, int> ReadScribeOutput() {
    std::map<int64_t, int> counts;
    SimClock clock(kChildClockStart * 2);
    scribe::Scribe scribe(&clock, root_ + "/scribe");
    EXPECT_TRUE(scribe.CreateCategory(PersistedCategory("out")).ok());
    TextRowCodec codec(EventSchema());
    for (int b = 0; b < kInputBuckets; ++b) {
      auto messages = scribe.Read("out", b, 0, 1u << 20);
      EXPECT_TRUE(messages.ok());
      for (const auto& m : *messages) {
        auto row = codec.Decode(m.payload);
        EXPECT_TRUE(row.ok());
        ++counts[row->Get("id").CoerceInt64()];
      }
    }
    return counts;
  }

  // Dumps one shard's LSM: "out/..." keys plus the checkpointed state.
  std::map<std::string, std::string> DumpShardDb(int bucket) {
    std::map<std::string, std::string> out;
    auto db = lsm::Db::Open(lsm::DbOptions{},
                            root_ + "/state/tally/shard-" +
                                std::to_string(bucket));
    EXPECT_TRUE(db.ok()) << db.status();
    if (!db.ok()) return out;
    auto it = (*db)->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      out[it.key()] = it.value();
    }
    return out;
  }

  const std::string& root() const { return root_; }

 private:
  std::string root_;
  StateSemantics state_;
  OutputSemantics output_;
};

// Kill sites a driver child actually reaches. Sites that happen not to fire
// in a given round (e.g. no flush was due) just produce a clean exit — the
// loop only counts rounds that really died.
const char* const kKillSites[] = {
    "scribe.segment.append", "lsm.wal.append",         "lsm.wal.sync",
    "lsm.flush",             "hdfs.fsimage.write",     "hdfs.block.write",
    "checkpoint.write.state", "checkpoint.write.offset",
};

struct ChaosResult {
  int kill_rounds = 0;
  int total_forks = 0;
  int64_t events = 0;
};

// Runs the full chaos loop for one semantics mode and leaves the harness
// root drained; `golden` receives the identical input and one clean run.
ChaosResult RunChaosLoop(CrashHarness* harness, CrashHarness* golden,
                         uint64_t seed, bool wipe_shard_dirs) {
  ChaosResult result;
  const int target = CrashRounds();
  Rng rng(seed);
  int64_t next_id = 0;

  harness->AppendInput(next_id, next_id + 40);
  next_id += 40;

  while (result.kill_rounds < target && result.total_forks < 20 * target) {
    ++result.total_forks;
    harness->AppendInput(next_id, next_id + 10);
    next_id += 10;

    const char* site = kKillSites[rng.Uniform(std::size(kKillSites))];
    const std::string spec =
        std::string(site) + "#" + std::to_string(rng.Uniform(12));
    ::setenv(FaultRegistry::kKillSpecEnvVar, spec.c_str(), 1);

    // Every few kill rounds, simulate machine loss for shard 0: wipe its
    // local directory so the child must restore from the HDFS backup
    // (Fig 10) before resuming.
    if (wipe_shard_dirs && result.kill_rounds > 0 &&
        result.kill_rounds % 5 == 0 && rng.Bernoulli(0.5)) {
      EXPECT_TRUE(RemoveAll(harness->root() + "/state/tally/shard-0").ok());
    }

    const int code = harness->RunChild();
    if (code == FaultRegistry::kKillExitCode) {
      ++result.kill_rounds;
    } else {
      EXPECT_EQ(code, 0) << "driver child failed (spec " << spec << ")";
      if (code != 0) break;
    }
  }
  ::unsetenv(FaultRegistry::kKillSpecEnvVar);

  // Final clean run drains whatever the last kill left behind.
  EXPECT_EQ(harness->RunChild(), 0);

  // Golden: identical input, one uninterrupted run.
  golden->AppendInput(0, next_id);
  EXPECT_EQ(golden->RunChild(), 0);

  result.events = next_id;
  return result;
}

TEST(CrashHarnessTest, ExactlyOnceSurvivesKillLoopByteIdentical) {
  const std::string dir = MakeTempDir("chaos_eo");
  CrashHarness harness(dir + "/crash", StateSemantics::kExactlyOnce,
                       OutputSemantics::kExactlyOnce);
  CrashHarness golden(dir + "/golden", StateSemantics::kExactlyOnce,
                      OutputSemantics::kExactlyOnce);
  const ChaosResult result =
      RunChaosLoop(&harness, &golden, /*seed=*/101, /*wipe_shard_dirs=*/true);
  EXPECT_GE(result.kill_rounds, CrashRounds());

  int64_t total_out = 0;
  for (int b = 0; b < kInputBuckets; ++b) {
    const auto crash_db = harness.DumpShardDb(b);
    const auto golden_db = golden.DumpShardDb(b);
    // Byte-identical: same keys, same values — output AND checkpointed
    // state (count + offset) all match the never-killed run.
    EXPECT_EQ(crash_db, golden_db) << "shard " << b;
    for (const auto& [key, value] : crash_db) {
      if (key.rfind("out/", 0) == 0) ++total_out;
    }
  }
  EXPECT_EQ(total_out, result.events);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(CrashHarnessTest, AtLeastOnceNeverLosesOutput) {
  const std::string dir = MakeTempDir("chaos_alo");
  CrashHarness harness(dir + "/crash", StateSemantics::kAtLeastOnce,
                       OutputSemantics::kAtLeastOnce);
  CrashHarness golden(dir + "/golden", StateSemantics::kAtLeastOnce,
                      OutputSemantics::kAtLeastOnce);
  const ChaosResult result =
      RunChaosLoop(&harness, &golden, /*seed=*/202, /*wipe_shard_dirs=*/false);
  EXPECT_GE(result.kill_rounds, CrashRounds());

  const auto crash = harness.ReadScribeOutput();
  const auto golden_out = golden.ReadScribeOutput();
  EXPECT_EQ(static_cast<int64_t>(golden_out.size()), result.events);
  // Superset: every golden emission survives (possibly duplicated); the
  // crash run invents no ids of its own.
  for (const auto& [id, count] : golden_out) {
    const auto it = crash.find(id);
    ASSERT_NE(it, crash.end()) << "lost id " << id;
    EXPECT_GE(it->second, count);
  }
  EXPECT_EQ(crash.size(), golden_out.size());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(CrashHarnessTest, AtMostOnceNeverDuplicatesOutput) {
  const std::string dir = MakeTempDir("chaos_amo");
  CrashHarness harness(dir + "/crash", StateSemantics::kAtMostOnce,
                       OutputSemantics::kAtMostOnce);
  CrashHarness golden(dir + "/golden", StateSemantics::kAtMostOnce,
                      OutputSemantics::kAtMostOnce);
  const ChaosResult result =
      RunChaosLoop(&harness, &golden, /*seed=*/303, /*wipe_shard_dirs=*/false);
  EXPECT_GE(result.kill_rounds, CrashRounds());

  const auto crash = harness.ReadScribeOutput();
  const auto golden_out = golden.ReadScribeOutput();
  EXPECT_EQ(static_cast<int64_t>(golden_out.size()), result.events);
  // Subset: ids may be lost across kills but never emitted twice.
  for (const auto& [id, count] : crash) {
    EXPECT_EQ(count, 1) << "duplicated id " << id;
    EXPECT_TRUE(golden_out.count(id) > 0) << "unknown id " << id;
  }
  EXPECT_LE(crash.size(), golden_out.size());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// ---------------------------------------------------------------------------
// End-to-end semantics matrix: every supported (state, output) pair crashed
// at every FailurePoint must land on its Fig 7/8 outcome.

struct MatrixCase {
  StateSemantics state;
  OutputSemantics output;
};

TEST(SemanticsMatrixTest, AllSupportedPairsAtEveryFailurePoint) {
  const MatrixCase cases[] = {
      {StateSemantics::kAtLeastOnce, OutputSemantics::kAtLeastOnce},
      {StateSemantics::kExactlyOnce, OutputSemantics::kAtLeastOnce},
      {StateSemantics::kAtMostOnce, OutputSemantics::kAtMostOnce},
      {StateSemantics::kExactlyOnce, OutputSemantics::kAtMostOnce},
      {StateSemantics::kExactlyOnce, OutputSemantics::kExactlyOnce},
  };
  const FailurePoint points[] = {FailurePoint::kAfterProcessing,
                                 FailurePoint::kBetweenCheckpointWrites,
                                 FailurePoint::kAfterCheckpoint};
  constexpr int kEvents = 100;

  for (const MatrixCase& c : cases) {
    ASSERT_TRUE(IsSupportedCombination(c.state, c.output));
    for (const FailurePoint point : points) {
      SCOPED_TRACE(std::string(ToString(c.state)) + "/" + ToString(c.output) +
                   "/point-" + std::to_string(static_cast<int>(point)));
      const std::string dir = MakeTempDir("matrix");
      SimClock clock(1'000'000);
      scribe::Scribe scribe(&clock);
      scribe::CategoryConfig in;
      in.name = "in";
      ASSERT_TRUE(scribe.CreateCategory(in).ok());

      std::unique_ptr<zippydb::Cluster> cluster;
      auto sink = std::make_shared<CollectingSink>();

      NodeConfig config;
      config.name = "tally";
      config.input_category = "in";
      config.input_schema = EventSchema();
      config.event_time_column = "event_time";
      config.stateful_factory = [] {
        return std::make_unique<TallyProcessor>();
      };
      config.state_semantics = c.state;
      config.output_semantics = c.output;
      config.checkpoint_every_events = 10;
      config.backend = StateBackend::kLocal;
      config.state_dir = dir + "/state";
      config.sink = sink;
      if (c.output == OutputSemantics::kExactlyOnce) {
        zippydb::ClusterOptions zopt;
        zopt.simulate_latency = false;
        auto opened = zippydb::Cluster::Open(zopt, dir + "/z");
        ASSERT_TRUE(opened.ok());
        cluster = std::move(*opened);
        config.backend = StateBackend::kRemote;
        config.remote = cluster.get();
        config.sink = std::make_shared<ZippyDbSink>(
            cluster.get(), "out", std::vector<std::string>{"id"},
            std::vector<std::string>{"topic"});
      }

      auto shard = NodeShard::Create(config, &scribe, &clock, 0);
      ASSERT_TRUE(shard.ok()) << shard.status();
      int fires = 0;
      (*shard)->SetFailureInjector([&fires, point](FailurePoint p) {
        return p == point && ++fires == 3;
      });

      TextRowCodec codec(EventSchema());
      for (int i = 0; i < kEvents; ++i) {
        Row row(EventSchema(), {Value(clock.NowMicros()), Value(int64_t{i}),
                                Value("t" + std::to_string(i % 3))});
        ASSERT_TRUE(scribe.Write("in", 0, codec.Encode(row)).ok());
      }
      for (int round = 0; round < 1000; ++round) {
        if (!(*shard)->alive()) {
          ASSERT_TRUE((*shard)->Recover().ok());
        }
        auto ran = (*shard)->RunOnce();
        if (!ran.ok()) {
          ASSERT_TRUE(ran.status().IsAborted()) << ran.status();
          continue;
        }
        if (ran.value() == 0) break;
      }

      // Output-side outcome.
      if (c.output == OutputSemantics::kExactlyOnce) {
        auto rows = cluster->ScanPrefix("out/");
        ASSERT_TRUE(rows.ok());
        EXPECT_EQ(rows->size(), static_cast<size_t>(kEvents));
      } else {
        std::map<int64_t, int> counts;
        for (const Row& row : sink->rows()) {
          ++counts[row.Get("id").CoerceInt64()];
        }
        int64_t total = 0;
        for (const auto& [id, n] : counts) total += n;
        if (c.output == OutputSemantics::kAtLeastOnce) {
          EXPECT_EQ(counts.size(), static_cast<size_t>(kEvents));
          EXPECT_GE(total, kEvents);
        } else {
          EXPECT_LE(counts.size(), static_cast<size_t>(kEvents));
          for (const auto& [id, n] : counts) EXPECT_EQ(n, 1);
        }
      }
      ASSERT_TRUE(RemoveAll(dir).ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Manifest-driven in-process recovery (deterministic complement to the
// chaos loop) and graceful shutdown.

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("recovery");
    clock_ = std::make_unique<SimClock>(1'000'000);
    scribe_ = std::make_unique<scribe::Scribe>(clock_.get());
    scribe::CategoryConfig in;
    in.name = "in";
    in.num_buckets = 2;
    ASSERT_TRUE(scribe_->CreateCategory(in).ok());
    hdfs_ = std::make_unique<hdfs::HdfsCluster>(dir_ + "/hdfs");
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  NodeConfig TallyConfig(StateSemantics state, OutputSemantics output,
                         std::shared_ptr<OutputSink> sink = nullptr) {
    NodeConfig config;
    config.name = "tally";
    config.input_category = "in";
    config.input_schema = EventSchema();
    config.event_time_column = "event_time";
    config.stateful_factory = [] { return std::make_unique<TallyProcessor>(); };
    config.state_semantics = state;
    config.output_semantics = output;
    config.checkpoint_every_events = 8;
    config.backend = StateBackend::kLocal;
    config.state_dir = dir_ + "/state";
    config.hdfs = hdfs_.get();
    config.backup_every_checkpoints = 1;
    config.sink = sink != nullptr ? std::move(sink)
                                  : std::make_shared<LsmOutputSink>();
    return config;
  }

  void WriteEvents(int64_t from, int64_t to) {
    TextRowCodec codec(EventSchema());
    for (int64_t i = from; i < to; ++i) {
      Row row(EventSchema(), {Value(clock_->NowMicros()), Value(i),
                              Value("t" + std::to_string(i % 3))});
      ASSERT_TRUE(
          scribe_->Write("in", static_cast<int>(i % 2), codec.Encode(row))
              .ok());
    }
  }

  // The count checkpointed in a shard's local DB ("__state__").
  int64_t ShardStateCount(int bucket) {
    auto db = lsm::Db::Open(
        lsm::DbOptions{},
        dir_ + "/state/tally/shard-" + std::to_string(bucket));
    EXPECT_TRUE(db.ok()) << db.status();
    if (!db.ok()) return -1;
    auto state = (*db)->Get("__state__");
    EXPECT_TRUE(state.ok()) << state.status();
    return state.ok() ? strtoll(state->c_str(), nullptr, 10) : -1;
  }

  Pipeline::NodeConfigResolver Resolver(
      StateSemantics state, OutputSemantics output,
      std::shared_ptr<OutputSink> sink = nullptr) {
    return [this, state, output, sink](const ManifestNodeRecord&) {
      return StatusOr<NodeConfig>(TallyConfig(state, output, sink));
    };
  }

  std::string dir_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<scribe::Scribe> scribe_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
};

TEST_F(RecoveryTest, RecoverContinuesExactlyOnceAcrossProcessDeath) {
  const std::string manifest = dir_ + "/manifest";
  {
    Pipeline pipeline(scribe_.get(), clock_.get());
    ASSERT_TRUE(pipeline
                    .AddNode(TallyConfig(StateSemantics::kExactlyOnce,
                                         OutputSemantics::kExactlyOnce))
                    .ok());
    ASSERT_TRUE(pipeline.EnableManifest(manifest).ok());
    WriteEvents(0, 60);
    auto drained = pipeline.RunUntilQuiescent();
    ASSERT_TRUE(drained.ok()) << drained.status();
    EXPECT_EQ(drained.value(), 60u);
  }  // Pipeline destroyed = old process died; DBs closed.

  WriteEvents(60, 100);
  auto revived = std::make_unique<Pipeline>(scribe_.get(), clock_.get());
  ASSERT_TRUE(
      revived
          ->Recover(manifest, Resolver(StateSemantics::kExactlyOnce,
                                       OutputSemantics::kExactlyOnce))
          .ok());
  auto drained = revived->RunUntilQuiescent();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(drained.value(), 40u);

  // Each shard resumed from a real checkpointed offset (local restart).
  for (NodeShard* shard : revived->Shards("tally")) {
    EXPECT_TRUE(shard->had_checkpoint_offset());
  }
  // Close the shards' LSM handles before inspecting the DBs directly.
  revived.reset();
  int64_t total = 0;
  for (int b = 0; b < 2; ++b) total += ShardStateCount(b);
  EXPECT_EQ(total, 100);
}

TEST_F(RecoveryTest, NewMachineRestoresShardFromHdfsBackup) {
  const std::string manifest = dir_ + "/manifest";
  {
    Pipeline pipeline(scribe_.get(), clock_.get());
    ASSERT_TRUE(pipeline
                    .AddNode(TallyConfig(StateSemantics::kExactlyOnce,
                                         OutputSemantics::kExactlyOnce))
                    .ok());
    ASSERT_TRUE(pipeline.EnableManifest(manifest).ok());
    WriteEvents(0, 80);
    ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  }

  // "New machine": shard 0's local directory is gone.
  ASSERT_TRUE(RemoveAll(dir_ + "/state/tally/shard-0").ok());

  auto revived = std::make_unique<Pipeline>(scribe_.get(), clock_.get());
  ASSERT_TRUE(
      revived
          ->Recover(manifest, Resolver(StateSemantics::kExactlyOnce,
                                       OutputSemantics::kExactlyOnce))
          .ok());
  ASSERT_TRUE(revived->RunUntilQuiescent().ok());
  revived.reset();
  // Backup restore rewinds state and offset together, so replay re-counts
  // exactly — both shards land on their precise share.
  EXPECT_EQ(ShardStateCount(0) + ShardStateCount(1), 80);
}

TEST_F(RecoveryTest, InterruptedHdfsRestoreIsRerunNotResumed) {
  const std::string manifest = dir_ + "/manifest";
  {
    Pipeline pipeline(scribe_.get(), clock_.get());
    ASSERT_TRUE(pipeline
                    .AddNode(TallyConfig(StateSemantics::kExactlyOnce,
                                         OutputSemantics::kExactlyOnce))
                    .ok());
    ASSERT_TRUE(pipeline.EnableManifest(manifest).ok());
    WriteEvents(0, 80);
    ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  }

  // Simulate a worker killed mid-restore: the RESTORE_PENDING marker and
  // the MANIFEST landed, but the files the MANIFEST references did not
  // (RestoreBackup writes backup files one by one). Resuming such a
  // directory would either crash-loop (Open keeps failing while the
  // MANIFEST's presence blocks a fresh restore) or silently lose state;
  // recovery must wipe it and re-run the restore from the backup.
  const std::string shard_dir = dir_ + "/state/tally/shard-0";
  ASSERT_TRUE(RemoveAll(shard_dir).ok());
  ASSERT_TRUE(CreateDirs(shard_dir).ok());
  ASSERT_TRUE(WriteFileDurable(shard_dir + "/RESTORE_PENDING", "1").ok());
  auto backup_manifest = hdfs_->ReadFile("backup/tally/shard-0/MANIFEST");
  ASSERT_TRUE(backup_manifest.ok()) << backup_manifest.status();
  ASSERT_TRUE(
      WriteFileDurable(shard_dir + "/MANIFEST", *backup_manifest).ok());

  auto revived = std::make_unique<Pipeline>(scribe_.get(), clock_.get());
  ASSERT_TRUE(revived
                  ->Recover(manifest, Resolver(StateSemantics::kExactlyOnce,
                                               OutputSemantics::kExactlyOnce))
                  .ok());
  ASSERT_TRUE(revived->RunUntilQuiescent().ok());
  revived.reset();
  EXPECT_EQ(ShardStateCount(0) + ShardStateCount(1), 80);
  // Reconciliation completed, so the marker is gone.
  EXPECT_FALSE(FileExists(shard_dir + "/RESTORE_PENDING"));
}

TEST_F(RecoveryTest, RecoverPreconditions) {
  Pipeline pipeline(scribe_.get(), clock_.get());
  // No manifest on disk.
  EXPECT_TRUE(pipeline
                  .Recover(dir_ + "/nope",
                           Resolver(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kExactlyOnce))
                  .IsNotFound());
  // Non-empty pipeline.
  ASSERT_TRUE(pipeline
                  .AddNode(TallyConfig(StateSemantics::kExactlyOnce,
                                       OutputSemantics::kExactlyOnce))
                  .ok());
  ASSERT_TRUE(pipeline.EnableManifest(dir_ + "/manifest").ok());
  EXPECT_TRUE(pipeline
                  .Recover(dir_ + "/manifest",
                           Resolver(StateSemantics::kExactlyOnce,
                                    OutputSemantics::kExactlyOnce))
                  .code() == StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, TornOffsetsFileDoesNotBlockRecovery) {
  const std::string manifest = dir_ + "/manifest";
  {
    Pipeline pipeline(scribe_.get(), clock_.get());
    ASSERT_TRUE(pipeline
                    .AddNode(TallyConfig(StateSemantics::kAtMostOnce,
                                         OutputSemantics::kAtMostOnce,
                                         std::make_shared<CollectingSink>()))
                    .ok());
    ASSERT_TRUE(pipeline.EnableManifest(manifest).ok());
    WriteEvents(0, 40);
    ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  }
  // Tear the advisory offsets snapshot mid-file.
  const std::string path = manifest + "/" + kOffsetsFileName;
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFileAtomic(path, data->substr(0, data->size() / 3)).ok());

  Pipeline revived(scribe_.get(), clock_.get());
  const Status st = revived.Recover(
      manifest, Resolver(StateSemantics::kAtMostOnce,
                         OutputSemantics::kAtMostOnce,
                         std::make_shared<CollectingSink>()));
  EXPECT_TRUE(st.ok()) << st;
  auto drained = revived.RunUntilQuiescent();
  EXPECT_TRUE(drained.ok()) << drained.status();
}

TEST(GracefulShutdownTest, SigtermDrainsAtCheckpointBoundary) {
  InstallShutdownSignalHandlers();
  ResetShutdown();

  const std::string dir = MakeTempDir("shutdown");
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = 4;
  ASSERT_TRUE(scribe.CreateCategory(in).ok());
  auto sink = std::make_shared<CollectingSink>();

  NodeConfig config;
  config.name = "tally";
  config.input_category = "in";
  config.input_schema = EventSchema();
  config.event_time_column = "event_time";
  config.stateful_factory = [] { return std::make_unique<TallyProcessor>(); };
  config.state_semantics = StateSemantics::kExactlyOnce;
  config.output_semantics = OutputSemantics::kAtLeastOnce;
  config.checkpoint_every_events = 5;
  config.backend = StateBackend::kLocal;
  config.state_dir = dir + "/state";
  config.sink = sink;

  Pipeline::Options options;
  options.num_threads = 4;  // Worker pool must drain too.
  Pipeline pipeline(&scribe, &clock, options);
  ASSERT_TRUE(pipeline.AddNode(config).ok());

  TextRowCodec codec(EventSchema());
  for (int i = 0; i < 200; ++i) {
    Row row(EventSchema(), {Value(clock.NowMicros()), Value(int64_t{i}),
                            Value("t0")});
    ASSERT_TRUE(scribe.Write("in", i % 4, codec.Encode(row)).ok());
  }

  auto first = pipeline.RunRound();
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first.value(), 0u);

  // Deliver a real SIGTERM: the handler flips the flag, the next drive call
  // returns without starting new work, and nothing is torn. The interrupted
  // drain must be distinguishable from quiescence — input is still queued,
  // so an OK "drained" return here would be a lie (the old behavior).
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_TRUE(ShutdownRequested());
  auto stopped = pipeline.RunUntilQuiescent();
  ASSERT_FALSE(stopped.ok());
  EXPECT_TRUE(stopped.status().IsCancelled()) << stopped.status();
  // The message carries the drained-so-far count (no new batches started).
  EXPECT_NE(stopped.status().message().find("draining 0 events"),
            std::string::npos)
      << stopped.status();

  // A restarted drive loop (flag cleared) finishes the backlog; every event
  // lands exactly once despite the interruption.
  ResetShutdown();
  auto drained = pipeline.RunUntilQuiescent();
  ASSERT_TRUE(drained.ok()) << drained.status();
  std::set<int64_t> ids;
  for (const Row& row : sink->rows()) ids.insert(row.Get("id").CoerceInt64());
  EXPECT_EQ(ids.size(), 200u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::stylus
