// Tests for Puma: lexer, parser (including the paper's Figure 2 app),
// expression evaluation + UDFs, aggregate cells (monoid properties), the
// windowed aggregation engine, the streaming app with HBase checkpoints and
// crash recovery, filter streams, the query API, the review-gated deploy
// flow, and streaming-vs-batch equivalence.

#include <gtest/gtest.h>

#include <cmath>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "puma/agg.h"
#include "puma/app.h"
#include "puma/batch.h"
#include "puma/expr.h"
#include "puma/lexer.h"
#include "puma/parser.h"
#include "storage/laser/laser.h"

namespace fbstream::puma {
namespace {

// The complete Puma app from the paper's Figure 2.
constexpr char kFigure2App[] = R"(
CREATE APPLICATION top_events;

CREATE INPUT TABLE events_score(
  event_time,
  event,
  category,
  score
)
FROM SCRIBE("events_stream")
TIME event_time;

CREATE TABLE top_events_5min AS
SELECT
  category,
  event,
  topk(score) AS score
FROM
  events_score [5 minutes]
)";

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x, 42, 3.5, 'str' FROM t [5 minutes];");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_EQ((*tokens)[5].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 3.5);
  EXPECT_EQ((*tokens)[7].type, TokenType::kString);
  EXPECT_EQ((*tokens)[7].text, "str");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select Select SELECT");
  ASSERT_TRUE(tokens.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword);
    EXPECT_EQ((*tokens)[i].text, "SELECT");
  }
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("x -- this is a comment\ny");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // x, y, end.
  EXPECT_EQ((*tokens)[1].text, "y");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("what@is").ok());
}

TEST(ParserTest, ParsesFigure2App) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "top_events");
  ASSERT_EQ(spec->inputs.size(), 1u);
  EXPECT_EQ(spec->inputs[0].name, "events_score");
  EXPECT_EQ(spec->inputs[0].scribe_category, "events_stream");
  EXPECT_EQ(spec->inputs[0].time_column, "event_time");
  ASSERT_EQ(spec->inputs[0].columns.size(), 4u);

  ASSERT_EQ(spec->tables.size(), 1u);
  const CreateTableStmt& table = spec->tables[0];
  EXPECT_EQ(table.name, "top_events_5min");
  EXPECT_EQ(table.from, "events_score");
  EXPECT_EQ(table.window_micros, 5 * kMicrosPerMinute);
  ASSERT_EQ(table.items.size(), 3u);
  EXPECT_FALSE(table.items[0].is_aggregate);
  EXPECT_FALSE(table.items[1].is_aggregate);
  EXPECT_TRUE(table.items[2].is_aggregate);
  EXPECT_EQ(table.items[2].agg, AggFunction::kTopK);
  EXPECT_EQ(table.items[2].alias, "score");
  // Implicit group key from non-aggregate items.
  EXPECT_EQ(table.group_by, (std::vector<std::string>{"category", "event"}));
}

TEST(ParserTest, TypedColumnsAndWhereAndGroupBy) {
  auto spec = ParseApp(R"(
    CREATE APPLICATION app;
    CREATE INPUT TABLE t (ts BIGINT, name STRING, v DOUBLE)
      FROM SCRIBE("cat") TIME ts;
    CREATE TABLE agg AS
      SELECT name, count(*) AS n, sum(v) AS total
      FROM t [1 minutes]
      WHERE v > 0 AND NOT name = 'skip'
      GROUP BY name;
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->inputs[0].columns[0].type, ValueType::kInt64);
  EXPECT_EQ(spec->inputs[0].columns[2].type, ValueType::kDouble);
  const CreateTableStmt& table = spec->tables[0];
  ASSERT_NE(table.where, nullptr);
  EXPECT_EQ(table.group_by, std::vector<std::string>{"name"});
  EXPECT_EQ(table.items[1].agg, AggFunction::kCount);
  EXPECT_EQ(table.items[2].agg, AggFunction::kSum);
}

TEST(ParserTest, StreamStatement) {
  auto spec = ParseApp(R"(
    CREATE APPLICATION filters;
    CREATE INPUT TABLE posts (ts, text) FROM SCRIBE("all_posts") TIME ts;
    CREATE STREAM superbowl AS
      SELECT ts, text FROM posts
      WHERE contains(text, '#superbowl') = 1
      EMIT TO SCRIBE("superbowl_posts");
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->streams.size(), 1u);
  EXPECT_EQ(spec->streams[0].output_category, "superbowl_posts");
  ASSERT_NE(spec->streams[0].where, nullptr);
}

TEST(ParserTest, RejectsSemanticErrors) {
  // Unknown column.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (ts, x) FROM SCRIBE("c") TIME ts;
    CREATE TABLE out AS SELECT nosuch, count(*) AS n FROM t [1 minutes];
  )").ok());
  // TIME column missing from the input.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (x) FROM SCRIBE("c") TIME ts;
  )").ok());
  // Aggregates not allowed in streams.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (ts, x) FROM SCRIBE("c") TIME ts;
    CREATE STREAM s AS SELECT count(*) AS n FROM t EMIT TO SCRIBE("o");
  )").ok());
  // CREATE TABLE with no aggregate.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (ts, x) FROM SCRIBE("c") TIME ts;
    CREATE TABLE out AS SELECT x FROM t [1 minutes];
  )").ok());
  // Unknown source table.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (ts, x) FROM SCRIBE("c") TIME ts;
    CREATE TABLE out AS SELECT count(*) AS n FROM missing [1 minutes];
  )").ok());
}

TEST(ExprTest, ArithmeticAndComparison) {
  auto schema = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kDouble},
                              {"s", ValueType::kString}});
  Row row(schema, {Value(10), Value(2.5), Value("Hello")});

  auto eval = [&row](const std::string& source) {
    auto spec = ParseApp(
        "CREATE APPLICATION x; CREATE INPUT TABLE t (a, b, s) FROM "
        "SCRIBE(\"c\") TIME a; CREATE STREAM o AS SELECT " +
        source + " AS r FROM t EMIT TO SCRIBE(\"c\");");
    EXPECT_TRUE(spec.ok()) << spec.status();
    return EvalExpr(*spec->streams[0].items[0].expr, row);
  };

  EXPECT_EQ(eval("a + 5").AsInt64(), 15);
  EXPECT_EQ(eval("a * 2 - 1").AsInt64(), 19);
  EXPECT_DOUBLE_EQ(eval("b * 4").AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(eval("a / 4").AsDouble(), 2.5);
  EXPECT_EQ(eval("a % 3").AsInt64(), 1);
  EXPECT_EQ(eval("a > 5").AsInt64(), 1);
  EXPECT_EQ(eval("a > 5 AND b < 2").AsInt64(), 0);
  EXPECT_EQ(eval("a > 5 OR b < 2").AsInt64(), 1);
  EXPECT_EQ(eval("NOT a > 5").AsInt64(), 0);
  EXPECT_EQ(eval("a != 10").AsInt64(), 0);
  EXPECT_EQ(eval("(a + 2) * 2").AsInt64(), 24);
}

TEST(ExprTest, BuiltinsAndUdfs) {
  auto schema = Schema::Make({{"s", ValueType::kString}});
  Row row(schema, {Value("Hello World")});

  Expr call;
  call.kind = ExprKind::kCall;
  call.function = "LOWER";
  auto col = std::make_shared<Expr>();
  col->kind = ExprKind::kColumn;
  col->column = "s";
  call.args.push_back(col);
  EXPECT_EQ(EvalExpr(call, row).AsString(), "hello world");

  call.function = "LENGTH";
  EXPECT_EQ(EvalExpr(call, row).AsInt64(), 11);

  call.function = "CONTAINS";
  auto lit = std::make_shared<Expr>();
  lit->kind = ExprKind::kLiteral;
  lit->literal = Value("World");
  call.args.push_back(lit);
  EXPECT_EQ(EvalExpr(call, row).AsInt64(), 1);

  // User-defined function overrides.
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("classify",
                            [](const std::vector<Value>& args) {
                              return Value(args[0].CoerceString().size() > 5
                                               ? "long"
                                               : "short");
                            })
                  .ok());
  Expr udf;
  udf.kind = ExprKind::kCall;
  udf.function = "CLASSIFY";
  udf.args.push_back(col);
  EXPECT_EQ(EvalExpr(udf, row, &registry).AsString(), "long");

  // UDFs cannot shadow aggregates.
  EXPECT_FALSE(registry.Register("sum", [](const std::vector<Value>&) {
    return Value();
  }).ok());
}

TEST(AggCellTest, FunctionsComputeCorrectly) {
  SelectItem item;
  AggCell count(AggFunction::kCount);
  AggCell sum(AggFunction::kSum);
  AggCell avg(AggFunction::kAvg);
  AggCell mn(AggFunction::kMin);
  AggCell mx(AggFunction::kMax);
  for (const double v : {3.0, 1.0, 4.0, 1.0, 5.0}) {
    count.UpdateCount();
    sum.Update(Value(v));
    avg.Update(Value(v));
    mn.Update(Value(v));
    mx.Update(Value(v));
  }
  EXPECT_EQ(count.Result(item).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(sum.Result(item).AsDouble(), 14.0);
  EXPECT_DOUBLE_EQ(avg.Result(item).AsDouble(), 2.8);
  EXPECT_DOUBLE_EQ(mn.Result(item).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(mx.Result(item).AsDouble(), 5.0);
}

TEST(AggCellTest, ApproxCountDistinct) {
  SelectItem item;
  AggCell uniques(AggFunction::kApproxCountDistinct);
  for (int i = 0; i < 10000; ++i) {
    uniques.Update(Value("user" + std::to_string(i % 2000)));
  }
  EXPECT_NEAR(uniques.Result(item).AsInt64(), 2000, 200);
}

TEST(AggCellTest, PercentileInterpolates) {
  SelectItem item;
  item.percentile = 0.5;
  AggCell p(AggFunction::kPercentile);
  for (int i = 1; i <= 99; ++i) p.Update(Value(double(i)));
  EXPECT_NEAR(p.Result(item).AsDouble(), 50.0, 0.01);
}

TEST(AggCellTest, MergeIsMonoid) {
  // Merging split streams equals processing the whole stream.
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble() * 100);

  for (const AggFunction fn :
       {AggFunction::kCount, AggFunction::kSum, AggFunction::kMin,
        AggFunction::kMax, AggFunction::kAvg}) {
    AggCell whole(fn);
    AggCell left(fn);
    AggCell right(fn);
    for (size_t i = 0; i < values.size(); ++i) {
      whole.Update(Value(values[i]));
      (i < 100 ? left : right).Update(Value(values[i]));
    }
    left.Merge(right);
    SelectItem item;
    const double expected = whole.Result(item).CoerceDouble();
    // Summation order differs between the split and whole runs; allow
    // floating-point slack.
    EXPECT_NEAR(left.Result(item).CoerceDouble(), expected,
                1e-9 * std::max(1.0, std::abs(expected)))
        << static_cast<int>(fn);
  }
}

TEST(AggCellTest, SerializeRoundTrip) {
  AggCell cell(AggFunction::kSum);
  for (int i = 0; i < 10; ++i) cell.Update(Value(i * 1.5));
  std::string data;
  cell.Serialize(&data);
  std::string_view view(data);
  auto back = AggCell::Deserialize(&view);
  ASSERT_TRUE(back.ok());
  SelectItem item;
  EXPECT_DOUBLE_EQ(back->Result(item).AsDouble(),
                   cell.Result(item).AsDouble());
  EXPECT_TRUE(view.empty());
}

// ---------------------------------------------------------------------------
// End-to-end app tests.

class PumaAppTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("puma");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig in;
    in.name = "events_stream";
    in.num_buckets = 2;
    ASSERT_TRUE(scribe_->CreateCategory(in).ok());
    zippydb::ClusterOptions zopt;
    zopt.simulate_latency = false;
    auto cluster = zippydb::Cluster::Open(zopt, dir_ + "/hbase");
    ASSERT_TRUE(cluster.ok());
    hbase_ = std::move(cluster).value();
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  PumaAppOptions Options() {
    PumaAppOptions options;
    options.hbase = hbase_.get();
    return options;
  }

  // Writes an events_score row (schema of Figure 2).
  void WriteEvent(Micros event_time, const std::string& event,
                  const std::string& category, int64_t score) {
    auto schema = Schema::Make({{"event_time", ValueType::kInt64},
                                {"event", ValueType::kString},
                                {"category", ValueType::kString},
                                {"score", ValueType::kInt64}});
    TextRowCodec codec(schema);
    Row row(schema,
            {Value(event_time), Value(event), Value(category), Value(score)});
    ASSERT_TRUE(
        scribe_->WriteSharded("events_stream", event, codec.Encode(row)).ok());
  }

  SimClock clock_{1};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
  std::unique_ptr<zippydb::Cluster> hbase_;
};

TEST_F(PumaAppTest, Figure2EndToEnd) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok());
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok()) << app.status();

  // Two 5-minute windows of scores.
  const Micros w0 = 0;
  const Micros w1 = 5 * kMicrosPerMinute;
  WriteEvent(w0 + 1, "game", "sports", 10);
  WriteEvent(w0 + 2, "game", "sports", 5);
  WriteEvent(w0 + 3, "election", "politics", 50);
  WriteEvent(w1 + 1, "movie", "arts", 7);

  auto n = (*app)->PollOnce();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);

  auto rows = (*app)->QueryWindow("top_events_5min", w0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);  // (politics, election), (sports, game).
  auto windows = (*app)->Windows("top_events_5min");
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(*windows, (std::vector<Micros>{w0, w1}));

  // topk(score) accumulated per (category, event).
  for (const PumaResultRow& row : *rows) {
    if (row.group[1].ToString() == "game") {
      EXPECT_DOUBLE_EQ(row.aggregates[0].CoerceDouble(), 15.0);
    } else {
      EXPECT_DOUBLE_EQ(row.aggregates[0].CoerceDouble(), 50.0);
    }
  }
}

TEST_F(PumaAppTest, TopKRanksPerCategory) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok());
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  for (int e = 0; e < 10; ++e) {
    WriteEvent(1, "event" + std::to_string(e), "sports", 10 * (e + 1));
    WriteEvent(2, "event" + std::to_string(e), "politics", 5 * (e + 1));
  }
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto top = (*app)->QueryTopK("top_events_5min", 0, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 6u);  // Top 3 per category.
  // Within each category the rows are score-descending.
  EXPECT_EQ((*top)[0].group[0].ToString(), "politics");
  EXPECT_EQ((*top)[0].group[1].ToString(), "event9");
  EXPECT_GE((*top)[0].aggregates[0].CoerceDouble(),
            (*top)[1].aggregates[0].CoerceDouble());
}

TEST_F(PumaAppTest, TopKUsesDeclaredK) {
  auto spec = ParseApp(R"(
    CREATE APPLICATION k2;
    CREATE INPUT TABLE events_score (event_time BIGINT, event, category,
                                     score BIGINT)
      FROM SCRIBE("events_stream") TIME event_time;
    CREATE TABLE top2 AS
      SELECT category, event, topk(score, 2) AS score
      FROM events_score [5 minutes];
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->tables[0].items[2].topk_k, 2);
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  for (int e = 0; e < 5; ++e) {
    WriteEvent(1, "e" + std::to_string(e), "cat", 10 * (e + 1));
  }
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto top = (*app)->QueryTopK("top2", 0);  // K from the declaration.
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].group[1].ToString(), "e4");
}

TEST_F(PumaAppTest, WindowFinality) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok());
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  WriteEvent(1, "e", "c", 1);
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto final0 = (*app)->IsWindowFinal("top_events_5min", 0);
  ASSERT_TRUE(final0.ok());
  EXPECT_FALSE(*final0);  // Event time has not passed the window end.
  WriteEvent(7 * kMicrosPerMinute, "e", "c", 1);
  ASSERT_TRUE((*app)->PollOnce().ok());
  final0 = (*app)->IsWindowFinal("top_events_5min", 0);
  ASSERT_TRUE(final0.ok());
  EXPECT_TRUE(*final0);
}

TEST_F(PumaAppTest, CrashRecoveryViaHBaseIsAtLeastOnce) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok());
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  for (int i = 0; i < 100; ++i) WriteEvent(i, "e", "c", 1);
  ASSERT_TRUE((*app)->PollOnce().ok());

  (*app)->Crash();
  EXPECT_FALSE((*app)->alive());
  EXPECT_FALSE((*app)->PollOnce().ok());
  ASSERT_TRUE((*app)->Recover().ok());

  // State and offsets restored: no events lost, none double counted (the
  // checkpoint completed cleanly).
  auto rows = (*app)->QueryWindow("top_events_5min", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0].aggregates[0].CoerceDouble(), 100.0);

  // And processing continues from the checkpointed offsets.
  for (int i = 0; i < 50; ++i) WriteEvent(i, "e", "c", 1);
  ASSERT_TRUE((*app)->PollOnce().ok());
  rows = (*app)->QueryWindow("top_events_5min", 0);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0].aggregates[0].CoerceDouble(), 150.0);
}

TEST_F(PumaAppTest, FilterStreamEmitsToScribe) {
  scribe::CategoryConfig out;
  out.name = "superbowl_posts";
  ASSERT_TRUE(scribe_->CreateCategory(out).ok());
  auto spec = ParseApp(R"(
    CREATE APPLICATION filters;
    CREATE INPUT TABLE posts (event_time, event, category, score)
      FROM SCRIBE("events_stream") TIME event_time;
    CREATE STREAM superbowl AS
      SELECT event_time, event FROM posts
      WHERE contains(event, 'superbowl') = 1
      EMIT TO SCRIBE("superbowl_posts");
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok()) << app.status();
  WriteEvent(1, "#superbowl party", "tv", 1);
  WriteEvent(2, "cats", "pets", 1);
  WriteEvent(3, "more #superbowl", "tv", 1);
  ASSERT_TRUE((*app)->PollOnce().ok());

  size_t emitted = 0;
  for (int b = 0; b < scribe_->NumBuckets("superbowl_posts"); ++b) {
    auto messages = scribe_->Read("superbowl_posts", b, 0, 100);
    ASSERT_TRUE(messages.ok());
    emitted += messages->size();
  }
  EXPECT_EQ(emitted, 2u);
}

TEST_F(PumaAppTest, ServiceReviewGateDeploysApps) {
  PumaService service(scribe_.get(), &clock_, Options());
  auto diff = service.SubmitApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(diff.ok()) << diff.status();
  // Not deployed until the diff is accepted.
  EXPECT_EQ(service.GetApp("top_events"), nullptr);
  EXPECT_EQ(service.pending_diffs(), 1);

  ASSERT_TRUE(service.AcceptDiff(*diff).ok());
  ASSERT_NE(service.GetApp("top_events"), nullptr);
  EXPECT_EQ(service.pending_diffs(), 0);

  WriteEvent(1, "e", "c", 3);
  ASSERT_TRUE(service.PollAll().ok());
  auto rows = service.GetApp("top_events")->QueryWindow("top_events_5min", 0);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);

  // Rejection path.
  auto diff2 = service.SubmitApp(
      "CREATE APPLICATION other; CREATE INPUT TABLE t (ts) FROM "
      "SCRIBE(\"events_stream\") TIME ts;");
  ASSERT_TRUE(diff2.ok());
  ASSERT_TRUE(service.RejectDiff(*diff2).ok());
  EXPECT_EQ(service.GetApp("other"), nullptr);

  ASSERT_TRUE(service.DeleteApp("top_events").ok());
  EXPECT_EQ(service.GetApp("top_events"), nullptr);
}

TEST_F(PumaAppTest, BadQueriesReturnNotFound) {
  auto spec = ParseApp(kFigure2App + std::string(";"));
  ASSERT_TRUE(spec.ok());
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  EXPECT_TRUE((*app)->QueryWindow("nope", 0).status().IsNotFound());
  EXPECT_TRUE((*app)->Windows("nope").status().IsNotFound());
}

TEST_F(PumaAppTest, StreamingAndBatchAgree) {
  // §4.5.2: the same app code runs over Hive for backfill; results match.
  auto spec = ParseApp(R"(
    CREATE APPLICATION counts;
    CREATE INPUT TABLE events_score (event_time, event, category, score)
      FROM SCRIBE("events_stream") TIME event_time;
    CREATE TABLE by_category AS
      SELECT category, count(*) AS n, sum(score) AS total
      FROM events_score [1 minutes];
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();

  // Generate one dataset; send to Scribe and archive in Hive.
  hive::Hive hive(dir_ + "/hive");
  auto schema = Schema::Make({{"event_time", ValueType::kInt64},
                              {"event", ValueType::kString},
                              {"category", ValueType::kString},
                              {"score", ValueType::kInt64}});
  ASSERT_TRUE(hive.CreateTable("events_archive", schema).ok());
  Rng rng(99);
  std::vector<Row> archive;
  for (int i = 0; i < 500; ++i) {
    const Micros t = static_cast<Micros>(rng.Uniform(10)) * kMicrosPerMinute +
                     static_cast<Micros>(rng.Uniform(60)) * kMicrosPerSecond;
    Row row(schema, {Value(t), Value("e" + std::to_string(rng.Uniform(5))),
                     Value("cat" + std::to_string(rng.Uniform(4))),
                     Value(static_cast<int64_t>(rng.Uniform(100)))});
    archive.push_back(row);
    TextRowCodec codec(schema);
    ASSERT_TRUE(scribe_->WriteSharded("events_stream",
                                      row.Get("event").ToString(),
                                      codec.Encode(row))
                    .ok());
  }
  ASSERT_TRUE(hive.WritePartition("events_archive", "2016-01-01", archive)
                  .ok());
  ASSERT_TRUE(hive.LandPartition("events_archive", "2016-01-01").ok());

  // Streaming.
  AppSpec spec_copy = *spec;
  auto app = PumaApp::Create(std::move(spec_copy), scribe_.get(), &clock_,
                             Options());
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->PollOnce().ok());

  // Batch over Hive (same spec).
  auto batch = RunAppOverHive(*spec, hive,
                              {{"events_score", "events_archive"}},
                              {"2016-01-01"});
  ASSERT_TRUE(batch.ok()) << batch.status();

  const auto& batch_rows = batch->tables.at("by_category");
  // Compare every (window, category) cell.
  size_t compared = 0;
  auto windows = (*app)->Windows("by_category");
  ASSERT_TRUE(windows.ok());
  for (const Micros w : *windows) {
    auto streaming_rows = (*app)->QueryWindow("by_category", w);
    ASSERT_TRUE(streaming_rows.ok());
    for (const PumaResultRow& srow : *streaming_rows) {
      bool found = false;
      for (const PumaResultRow& brow : batch_rows) {
        if (brow.window_start == srow.window_start &&
            brow.group == srow.group) {
          EXPECT_EQ(brow.aggregates[0].CoerceInt64(),
                    srow.aggregates[0].CoerceInt64());
          EXPECT_DOUBLE_EQ(brow.aggregates[1].CoerceDouble(),
                           srow.aggregates[1].CoerceDouble());
          found = true;
          ++compared;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing batch cell";
    }
  }
  EXPECT_EQ(compared, batch_rows.size());
  EXPECT_GT(compared, 10u);
}


TEST_F(PumaAppTest, LaserLookupJoinEnrichesRows) {
  // §2.5: "Laser can also make the result of a complex Hive query or a
  // Scribe stream available to a Puma or Stylus app, usually for a lookup
  // join, such as identifying the topic for a given hashtag."
  scribe::CategoryConfig dim;
  dim.name = "hashtag_topics";
  ASSERT_TRUE(scribe_->CreateCategory(dim).ok());

  laser::Laser laser_service(scribe_.get(), &clock_, dir_ + "/laser");
  auto topic_schema = Schema::Make(
      {{"hashtag", ValueType::kString}, {"topic", ValueType::kString}});
  laser::LaserAppConfig laser_config;
  laser_config.name = "topics";
  laser_config.scribe_category = "hashtag_topics";
  laser_config.input_schema = topic_schema;
  laser_config.key_columns = {"hashtag"};
  laser_config.value_columns = {"topic"};
  ASSERT_TRUE(laser_service.DeployApp(laser_config).ok());
  {
    TextRowCodec codec(topic_schema);
    Row a(topic_schema, {Value("#worldcup"), Value("sports")});
    Row b(topic_schema, {Value("#oscars"), Value("arts")});
    ASSERT_TRUE(scribe_->Write("hashtag_topics", 0, codec.Encode(a)).ok());
    ASSERT_TRUE(scribe_->Write("hashtag_topics", 0, codec.Encode(b)).ok());
    laser_service.PollAll();
  }

  // The input declares the joined column `topic`; the raw stream only
  // carries the first three columns.
  auto spec = ParseApp(R"(
    CREATE APPLICATION joined;
    CREATE INPUT TABLE posts (event_time BIGINT, hashtag, score BIGINT,
                              topic)
      FROM SCRIBE("events_stream") TIME event_time
      JOIN LASER("topics") ON hashtag;
    CREATE TABLE per_topic AS
      SELECT topic, count(*) AS n, sum(score) AS total
      FROM posts [5 minutes];
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  PumaAppOptions options = Options();
  options.laser = &laser_service;
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             options);
  ASSERT_TRUE(app.ok()) << app.status();

  auto post_schema = Schema::Make({{"event_time", ValueType::kInt64},
                                   {"hashtag", ValueType::kString},
                                   {"score", ValueType::kInt64}});
  TextRowCodec codec(post_schema);
  const std::pair<const char*, int> kPosts[] = {
      {"#worldcup", 10}, {"#worldcup", 20}, {"#oscars", 5}, {"#unknown", 7}};
  for (const auto& [hashtag, score] : kPosts) {
    Row row(post_schema, {Value(1), Value(hashtag), Value(score)});
    ASSERT_TRUE(
        scribe_->WriteSharded("events_stream", hashtag, codec.Encode(row))
            .ok());
  }
  ASSERT_TRUE((*app)->PollOnce().ok());

  auto rows = (*app)->QueryWindow("per_topic", 0);
  ASSERT_TRUE(rows.ok());
  std::map<std::string, std::pair<int64_t, double>> by_topic;
  for (const PumaResultRow& row : *rows) {
    by_topic[row.group[0].ToString()] = {row.aggregates[0].CoerceInt64(),
                                         row.aggregates[1].CoerceDouble()};
  }
  ASSERT_EQ(by_topic.count("sports"), 1u);
  EXPECT_EQ(by_topic["sports"].first, 2);
  EXPECT_DOUBLE_EQ(by_topic["sports"].second, 30.0);
  EXPECT_EQ(by_topic["arts"].first, 1);
  // Unmatched lookups keep a null topic (grouped under "NULL").
  ASSERT_EQ(by_topic.count("NULL"), 1u);
  EXPECT_DOUBLE_EQ(by_topic["NULL"].second, 7.0);
}

TEST_F(PumaAppTest, LaserJoinValidation) {
  // Key column must be declared.
  EXPECT_FALSE(ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (ts, x) FROM SCRIBE("c") TIME ts
      JOIN LASER("app") ON missing_col;
  )").ok());
  // Declared join needs a Laser service at create time.
  auto spec = ParseApp(R"(
    CREATE APPLICATION a;
    CREATE INPUT TABLE t (event_time, x) FROM SCRIBE("events_stream")
      TIME event_time JOIN LASER("nope") ON x;
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto app = PumaApp::Create(std::move(spec).value(), scribe_.get(), &clock_,
                             Options());
  EXPECT_FALSE(app.ok());
}

}  // namespace
}  // namespace fbstream::puma
