// Tests for the ZippyDB cluster: sharding, CRUD, merge operators, batched
// ops, cross-shard transactions, failure injection, retry/backoff under
// flapping shards, op accounting.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::zippydb {
namespace {

class ZippyDbTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("zippy"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::unique_ptr<Cluster> OpenCluster(int shards = 3,
                                       bool with_merge = false) {
    ClusterOptions options;
    options.num_shards = shards;
    options.simulate_latency = false;  // Tests must be instant.
    if (with_merge) options.merge_operator = lsm::MakeInt64AddOperator();
    auto cluster = Cluster::Open(options, dir_ + "/c");
    EXPECT_TRUE(cluster.ok()) << cluster.status();
    return std::move(cluster).value();
  }

  std::string dir_;
};

TEST_F(ZippyDbTest, PutGetDelete) {
  auto cluster = OpenCluster();
  ASSERT_TRUE(cluster->Put("user:1", "alice").ok());
  auto got = cluster->Get("user:1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "alice");
  ASSERT_TRUE(cluster->Delete("user:1").ok());
  EXPECT_TRUE(cluster->Get("user:1").status().IsNotFound());
}

TEST_F(ZippyDbTest, ShardRoutingIsStableAndSpread) {
  auto cluster = OpenCluster(4);
  std::set<int> shards;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(cluster->ShardOf(key), cluster->ShardOf(key));
    shards.insert(cluster->ShardOf(key));
  }
  EXPECT_EQ(shards.size(), 4u);
}

TEST_F(ZippyDbTest, MergeAppendsServerSide) {
  auto cluster = OpenCluster(3, /*with_merge=*/true);
  ASSERT_TRUE(cluster->Merge("counter", "5").ok());
  ASSERT_TRUE(cluster->Merge("counter", "7").ok());
  auto got = cluster->Get("counter");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "12");
  EXPECT_EQ(cluster->stats().merges.load(), 2u);
}

TEST_F(ZippyDbTest, MergeWithoutOperatorFails) {
  auto cluster = OpenCluster();
  EXPECT_FALSE(cluster->Merge("k", "1").ok());
}

TEST_F(ZippyDbTest, MultiGetChargesPerShardNotPerKey) {
  auto cluster = OpenCluster(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(cluster->Put(key, "v").ok());
    keys.push_back(key);
  }
  cluster->stats().Reset();
  auto results = cluster->MultiGet(keys);
  ASSERT_EQ(results.size(), 30u);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  EXPECT_LE(cluster->stats().reads.load(), 3u);  // One per touched shard.
}

TEST_F(ZippyDbTest, WriteBatchRoutesAcrossShards) {
  auto cluster = OpenCluster(3);
  lsm::WriteBatch batch;
  for (int i = 0; i < 20; ++i) {
    batch.Put("batch" + std::to_string(i), std::to_string(i));
  }
  ASSERT_TRUE(cluster->WriteBatch(batch).ok());
  for (int i = 0; i < 20; ++i) {
    auto got = cluster->Get("batch" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, std::to_string(i));
  }
}

TEST_F(ZippyDbTest, TransactionCommitsAtomicallyAcrossShards) {
  auto cluster = OpenCluster(3);
  lsm::WriteBatch txn;
  txn.Put("state", "s1");
  txn.Put("offset", "42");
  txn.Put("output/1", "v");
  ASSERT_TRUE(cluster->CommitTransaction(txn).ok());
  EXPECT_EQ(*cluster->Get("state"), "s1");
  EXPECT_EQ(*cluster->Get("offset"), "42");
  EXPECT_EQ(*cluster->Get("output/1"), "v");
}

TEST_F(ZippyDbTest, UnavailableShardFailsOnlyItsKeys) {
  auto cluster = OpenCluster(3);
  // Find keys on different shards.
  std::string key0;
  std::string key1;
  for (int i = 0; i < 100 && (key0.empty() || key1.empty()); ++i) {
    const std::string k = "probe" + std::to_string(i);
    if (cluster->ShardOf(k) == 0 && key0.empty()) key0 = k;
    if (cluster->ShardOf(k) == 1 && key1.empty()) key1 = k;
  }
  ASSERT_FALSE(key0.empty());
  ASSERT_FALSE(key1.empty());
  cluster->SetShardAvailable(0, false);
  EXPECT_TRUE(cluster->Put(key0, "v").IsUnavailable());
  EXPECT_TRUE(cluster->Put(key1, "v").ok());  // Other shards unaffected.
  cluster->SetShardAvailable(0, true);
  EXPECT_TRUE(cluster->Put(key0, "v").ok());
}

TEST_F(ZippyDbTest, TransactionFailsIfAnyParticipantDown) {
  auto cluster = OpenCluster(3);
  lsm::WriteBatch txn;
  for (int i = 0; i < 10; ++i) txn.Put("t" + std::to_string(i), "v");
  cluster->SetShardAvailable(1, false);
  EXPECT_FALSE(cluster->CommitTransaction(txn).ok());
  // Nothing may have been applied to available shards either (atomicity):
  // the prepare phase fails before any write.
  cluster->SetShardAvailable(1, true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cluster->Get("t" + std::to_string(i)).status().IsNotFound());
  }
}

TEST_F(ZippyDbTest, ScanPrefixAcrossShards) {
  auto cluster = OpenCluster(3);
  ASSERT_TRUE(cluster->Put("app/a", "1").ok());
  ASSERT_TRUE(cluster->Put("app/b", "2").ok());
  ASSERT_TRUE(cluster->Put("other/c", "3").ok());
  auto scanned = cluster->ScanPrefix("app/");
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 2u);
  EXPECT_EQ((*scanned)[0].first, "app/a");
  EXPECT_EQ((*scanned)[1].first, "app/b");
}

TEST_F(ZippyDbTest, OpStatsAccumulate) {
  auto cluster = OpenCluster(3, /*with_merge=*/true);
  cluster->stats().Reset();
  ASSERT_TRUE(cluster->Put("a", "1").ok());
  ASSERT_TRUE(cluster->Merge("a", "2").ok());
  auto unused = cluster->Get("a");
  ASSERT_TRUE(unused.ok());
  EXPECT_EQ(cluster->stats().writes.load(), 1u);
  EXPECT_EQ(cluster->stats().merges.load(), 1u);
  EXPECT_EQ(cluster->stats().reads.load(), 1u);
}

TEST_F(ZippyDbTest, LatencySimulationSlowsOps) {
  ClusterOptions options;
  options.num_shards = 1;
  options.simulate_latency = true;
  options.network_rtt_micros = 2000;
  options.quorum_commit_micros = 0;
  auto cluster = Cluster::Open(options, dir_ + "/slow");
  ASSERT_TRUE(cluster.ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE((*cluster)->Put("k", "v").ok());
  const double micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(micros, 1800.0);
}

TEST_F(ZippyDbTest, RejectsZeroShards) {
  ClusterOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(Cluster::Open(options, dir_ + "/bad").ok());
}


TEST_F(ZippyDbTest, ReplicationSurvivesMinorityFailure) {
  auto cluster = OpenCluster(1);  // 1 shard x 3 replicas.
  ASSERT_EQ(cluster->replication(), 3);
  ASSERT_TRUE(cluster->Put("k", "v1").ok());
  cluster->SetReplicaAvailable(0, 0, false);
  EXPECT_EQ(cluster->LiveReplicas(0), 2);
  // Majority up: reads and writes proceed.
  ASSERT_TRUE(cluster->Put("k", "v2").ok());
  auto got = cluster->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
}

TEST_F(ZippyDbTest, RevivedReplicaCatchesUpFromLog) {
  auto cluster = OpenCluster(1);
  cluster->SetReplicaAvailable(0, 0, false);
  // Writes land while replica 0 is down.
  ASSERT_TRUE(cluster->Put("a", "1").ok());
  ASSERT_TRUE(cluster->Put("b", "2").ok());
  // Revive replica 0 and kill the two that saw the writes: if catch-up
  // works, replica 0 now serves them.
  cluster->SetReplicaAvailable(0, 0, true);
  cluster->SetReplicaAvailable(0, 1, false);
  cluster->SetReplicaAvailable(0, 2, false);
  auto a = cluster->Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "1");
  auto b = cluster->Get("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "2");
}

TEST_F(ZippyDbTest, QuorumLossBlocksWritesNotReads) {
  auto cluster = OpenCluster(1);
  ASSERT_TRUE(cluster->Put("k", "v").ok());
  cluster->SetReplicaAvailable(0, 1, false);
  cluster->SetReplicaAvailable(0, 2, false);
  EXPECT_EQ(cluster->LiveReplicas(0), 1);
  // 1/3 live: no write quorum...
  EXPECT_TRUE(cluster->Put("k", "v2").IsUnavailable());
  EXPECT_TRUE(cluster->Merge("k", "1").ok() == false);
  // ...but reads are still served by the surviving replica.
  auto got = cluster->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
}

TEST_F(ZippyDbTest, AllReplicasDownBlocksReads) {
  auto cluster = OpenCluster(1);
  ASSERT_TRUE(cluster->Put("k", "v").ok());
  cluster->SetShardAvailable(0, false);
  EXPECT_TRUE(cluster->Get("k").status().IsUnavailable());
  cluster->SetShardAvailable(0, true);
  EXPECT_TRUE(cluster->Get("k").ok());
}

TEST_F(ZippyDbTest, ReplicasConvergeAfterChurn) {
  auto cluster = OpenCluster(1, /*with_merge=*/true);
  Rng rng(13);
  // Random write stream with replicas flapping; quorum always holds
  // (at most one replica down at a time).
  int down = -1;
  for (int i = 0; i < 300; ++i) {
    if (rng.Bernoulli(0.1)) {
      if (down >= 0) cluster->SetReplicaAvailable(0, down, true);
      down = static_cast<int>(rng.Uniform(3));
      cluster->SetReplicaAvailable(0, down, false);
    }
    const std::string key = "k" + std::to_string(rng.Uniform(20));
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(cluster->Merge(key, "1").ok());
    } else {
      ASSERT_TRUE(cluster->Put(key, std::to_string(i)).ok());
    }
  }
  if (down >= 0) cluster->SetReplicaAvailable(0, down, true);
  // Every replica, read in isolation, returns the same values.
  std::vector<std::map<std::string, std::string>> views(3);
  for (int r = 0; r < 3; ++r) {
    for (int other = 0; other < 3; ++other) {
      cluster->SetReplicaAvailable(0, other, other == r);
    }
    for (int k = 0; k < 20; ++k) {
      const std::string key = "k" + std::to_string(k);
      auto got = cluster->Get(key);
      if (got.ok()) views[static_cast<size_t>(r)][key] = *got;
    }
  }
  EXPECT_EQ(views[0], views[1]);
  EXPECT_EQ(views[1], views[2]);
  EXPECT_FALSE(views[0].empty());
}

class ZippyDbRetryTest : public ZippyDbTest {
 protected:
  void SetUp() override {
    ZippyDbTest::SetUp();
    FaultRegistry::Global()->Reset();
  }
  void TearDown() override {
    FaultRegistry::Global()->Reset();
    FaultRegistry::Global()->SetClock(nullptr);
    ZippyDbTest::TearDown();
  }

  std::unique_ptr<Cluster> OpenRetryCluster(SimClock* clock,
                                            int max_attempts) {
    ClusterOptions options;
    options.num_shards = 2;
    options.simulate_latency = false;
    options.retry.max_attempts = max_attempts;
    options.retry.initial_backoff_micros = 100'000;
    options.clock = clock;
    auto cluster = Cluster::Open(options, dir_ + "/retry");
    EXPECT_TRUE(cluster.ok()) << cluster.status();
    return std::move(cluster).value();
  }
};

TEST_F(ZippyDbRetryTest, TransientWriteFaultsAreRetried) {
  SimClock clock(0);
  auto cluster = OpenRetryCluster(&clock, /*max_attempts=*/4);
  // Two consecutive injected failures: attempts 1 and 2 fail, attempt 3
  // lands. The fault fires before the batch enters the shard log, so the
  // retries cannot double-apply.
  FaultRegistry::Global()->FailNext("zippydb.write",
                                    StatusCode::kUnavailable, /*count=*/2);
  ASSERT_TRUE(cluster->Put("k", "v").ok());
  EXPECT_EQ(cluster->retry_stats().retries, 2u);
  EXPECT_EQ(cluster->retry_stats().exhausted, 0u);
  auto got = cluster->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
}

TEST_F(ZippyDbRetryTest, FlappingOutageWindowPassesDuringBackoff) {
  // Fault schedule: the write path is down for the first 50ms of simulated
  // time. The first attempt hits the window; the ~100ms backoff advances
  // the shared SimClock past the outage, so the retry succeeds — a
  // flapping shard recovered before the budget ran out.
  SimClock clock(0);
  FaultRegistry::Global()->SetClock(&clock);
  auto cluster = OpenRetryCluster(&clock, /*max_attempts=*/5);
  FaultRegistry::Global()->SetUnavailableBetween("zippydb.write", 0, 50'000);
  ASSERT_TRUE(cluster->Put("k", "v").ok());
  EXPECT_GE(cluster->retry_stats().retries, 1u);
  EXPECT_GE(clock.NowMicros(), 50'000);
  auto got = cluster->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
}

TEST_F(ZippyDbRetryTest, PermanentlyDownShardFailsCleanlyAfterBudget) {
  SimClock clock(0);
  auto cluster = OpenRetryCluster(&clock, /*max_attempts=*/3);
  std::string key0;
  std::string key1;
  for (int i = 0; i < 100 && (key0.empty() || key1.empty()); ++i) {
    const std::string k = "probe" + std::to_string(i);
    if (cluster->ShardOf(k) == 0 && key0.empty()) key0 = k;
    if (cluster->ShardOf(k) == 1 && key1.empty()) key1 = k;
  }
  ASSERT_FALSE(key0.empty());
  ASSERT_FALSE(key1.empty());
  cluster->SetShardAvailable(0, false);
  // The budget is exhausted against real quorum loss: a clean, annotated
  // Unavailable comes back (no hang — backoffs jump the SimClock).
  const Status st = cluster->Put(key0, "v");
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_NE(st.message().find("failed after 3 attempts"), std::string::npos);
  EXPECT_EQ(cluster->retry_stats().exhausted, 1u);
  // The healthy shard is untouched by the other shard's retries.
  ASSERT_TRUE(cluster->Put(key1, "v").ok());
  cluster->SetShardAvailable(0, true);
  ASSERT_TRUE(cluster->Put(key0, "v").ok());
}

}  // namespace
}  // namespace fbstream::zippydb
