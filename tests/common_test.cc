// Unit and property tests for src/common: status, values/rows, serde,
// clocks, rng, HyperLogLog, filesystem helpers, fault injection, retries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/clock.h"
#include "common/cost.h"
#include "common/fault.h"
#include "common/fs.h"
#include "common/retry.h"
#include "common/hash.h"
#include "common/hll.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/value.h"

namespace fbstream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key k1");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key k1");
}

TEST(StatusTest, RetryableCodes) {
  EXPECT_TRUE(Status::Unavailable("transient").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("slow").IsRetryable());
  EXPECT_FALSE(Status().IsRetryable());
  EXPECT_FALSE(Status::Aborted("crash").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_FALSE(Status::NotFound("gone").IsRetryable());
  EXPECT_FALSE(Status::IoError("disk").IsRetryable());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::IoError("disk");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  FBSTREAM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericComparisonCrossesTypes) {
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(1).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(3)), 0);
}

TEST(ValueTest, NullSortsFirstStringsLast) {
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_LT(Value(999).Compare(Value("a")), 0);
  EXPECT_LT(Value("a").Compare(Value("b")), 0);
}

TEST(ValueTest, Coercions) {
  EXPECT_EQ(Value("123").CoerceInt64(), 123);
  EXPECT_DOUBLE_EQ(Value("1.5").CoerceDouble(), 1.5);
  EXPECT_EQ(Value(42).CoerceString(), "42");
  EXPECT_EQ(Value().CoerceInt64(), 0);
  EXPECT_EQ(Value(3.9).CoerceInt64(), 3);
}

TEST(SchemaTest, IndexLookup) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("c"), -1);
  EXPECT_TRUE(schema.Has("a"));
  EXPECT_FALSE(schema.Has("z"));
}

TEST(RowTest, NamedAccess) {
  auto schema = Schema::Make({{"x", ValueType::kInt64},
                              {"y", ValueType::kString}});
  Row row(schema);
  EXPECT_TRUE(row.Set("x", Value(9)));
  EXPECT_TRUE(row.Set("y", Value("v")));
  EXPECT_FALSE(row.Set("zzz", Value(1)));
  EXPECT_EQ(row.Get("x").AsInt64(), 9);
  EXPECT_EQ(row.Get("y").AsString(), "v");
  EXPECT_TRUE(row.Get("missing").is_null());
}

TEST(SerdeTest, VarintRoundTrip) {
  for (const uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL,
                           1ULL << 32, ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view view(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&view, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(SerdeTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  std::string_view view(buf);
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&view, &out));
}

TEST(SerdeTest, ZigzagRoundTrip) {
  for (const int64_t v :
       std::initializer_list<int64_t>{0, -1, 1, -123456789,
                                      std::numeric_limits<int64_t>::min(),
                                      std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(SerdeTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string("\0bin\t", 5));
  std::string_view view(buf);
  std::string_view a;
  std::string_view b;
  ASSERT_TRUE(GetLengthPrefixed(&view, &a));
  ASSERT_TRUE(GetLengthPrefixed(&view, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, std::string("\0bin\t", 5));
}

TEST(SerdeTest, BinaryRowRoundTrip) {
  auto schema = Schema::Make({{"i", ValueType::kInt64},
                              {"d", ValueType::kDouble},
                              {"s", ValueType::kString},
                              {"n", ValueType::kNull}});
  BinaryRowCodec codec(schema);
  Row row(schema, {Value(-77), Value(3.14159), Value("text\twith\ttabs"),
                   Value()});
  auto decoded = codec.Decode(codec.Encode(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(SerdeTest, TextRowRoundTrip) {
  auto schema = Schema::Make({{"i", ValueType::kInt64},
                              {"d", ValueType::kDouble},
                              {"s", ValueType::kString}});
  TextRowCodec codec(schema);
  Row row(schema, {Value(42), Value(1.5), Value("hello world")});
  auto decoded = codec.Decode(codec.Encode(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Get(0).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(decoded->Get(1).AsDouble(), 1.5);
  EXPECT_EQ(decoded->Get(2).AsString(), "hello world");
}

TEST(SerdeTest, TextRowNegativeNumbers) {
  auto schema = Schema::Make({{"i", ValueType::kInt64}});
  TextRowCodec codec(schema);
  auto decoded = codec.Decode("-987");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Get(0).AsInt64(), -987);
}

TEST(SerdeTest, TextRowShortInputPadsNulls) {
  auto schema = Schema::Make({{"a", ValueType::kString},
                              {"b", ValueType::kString},
                              {"c", ValueType::kInt64}});
  TextRowCodec codec(schema);
  auto decoded = codec.Decode("only");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_columns(), 3u);
  EXPECT_EQ(decoded->Get(0).AsString(), "only");
}

TEST(ClockTest, SimClockAdvances) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(10);
  EXPECT_EQ(clock.NowMicros(), 10);
}

TEST(ClockTest, SystemClockMonotoneish) {
  SystemClock* clock = SystemClock::Get();
  const Micros a = clock->NowMicros();
  const Micros b = clock->NowMicros();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 1'000'000'000LL);  // Sometime after 1970.
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewedTowardLowRanks) {
  Rng rng(5);
  Zipf zipf(1000, 0.99);
  int rank0 = 0;
  int total = 20000;
  for (int i = 0; i < total; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    ASSERT_LT(r, 1000u);
    if (r == 0) ++rank0;
  }
  // Rank 0 should get far more than the uniform share (0.1%).
  EXPECT_GT(rank0, total / 100);
}

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  std::set<uint64_t> buckets;
  for (int i = 0; i < 100; ++i) {
    buckets.insert(Fnv1a64("key" + std::to_string(i)) % 8);
  }
  EXPECT_EQ(buckets.size(), 8u);  // All buckets hit.
}

TEST(HllTest, EmptyEstimatesZeroish) {
  HyperLogLog hll(12);
  EXPECT_LT(hll.Estimate(), 1.0);
}

TEST(HllTest, AccuracyWithinFewPercent) {
  HyperLogLog hll(12);
  constexpr int kTrue = 100000;
  for (int i = 0; i < kTrue; ++i) hll.Add("user" + std::to_string(i));
  const double est = hll.Estimate();
  EXPECT_NEAR(est, kTrue, kTrue * 0.05);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 1000; ++i) hll.Add("item" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 1000, 100);
}

TEST(HllTest, MergeIsUnion) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  for (int i = 0; i < 5000; ++i) a.Add("a" + std::to_string(i));
  for (int i = 0; i < 5000; ++i) b.Add("b" + std::to_string(i));
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 10000, 800);
}

TEST(HllTest, MergeIsCommutativeMonoid) {
  // Property: merge is associative + commutative with identity = empty.
  HyperLogLog x(12);
  HyperLogLog y(12);
  HyperLogLog z(12);
  for (int i = 0; i < 300; ++i) x.Add("x" + std::to_string(i));
  for (int i = 0; i < 300; ++i) y.Add("y" + std::to_string(i));
  for (int i = 0; i < 300; ++i) z.Add("z" + std::to_string(i));

  HyperLogLog xy = x;
  xy.Merge(y);
  HyperLogLog xy_z = xy;
  xy_z.Merge(z);

  HyperLogLog yz = y;
  yz.Merge(z);
  HyperLogLog x_yz = x;
  x_yz.Merge(yz);

  EXPECT_DOUBLE_EQ(xy_z.Estimate(), x_yz.Estimate());

  HyperLogLog with_identity = x;
  with_identity.Merge(HyperLogLog(12));
  EXPECT_DOUBLE_EQ(with_identity.Estimate(), x.Estimate());
}

TEST(HllTest, SerializeRoundTrip) {
  HyperLogLog hll(10);
  for (int i = 0; i < 2000; ++i) hll.Add("k" + std::to_string(i));
  HyperLogLog back = HyperLogLog::Deserialize(hll.Serialize());
  EXPECT_DOUBLE_EQ(back.Estimate(), hll.Estimate());
  EXPECT_EQ(back.precision(), 10);
}

TEST(FsTest, WriteReadRoundTrip) {
  const std::string dir = MakeTempDir("fstest");
  const std::string path = dir + "/file.bin";
  const std::string data("binary\0data", 11);
  ASSERT_TRUE(WriteFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(FsTest, AtomicWriteLeavesNoTmp) {
  const std::string dir = MakeTempDir("fstest");
  ASSERT_TRUE(WriteFileAtomic(dir + "/f", "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/f", "v2").ok());
  EXPECT_FALSE(FileExists(dir + "/f.tmp"));
  auto read = ReadFileToString(dir + "/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2");
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(FsTest, AppendAccumulates) {
  const std::string dir = MakeTempDir("fstest");
  ASSERT_TRUE(AppendToFile(dir + "/log", "a").ok());
  ASSERT_TRUE(AppendToFile(dir + "/log", "b").ok());
  auto read = ReadFileToString(dir + "/log");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "ab");
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(FsTest, ListDirSorted) {
  const std::string dir = MakeTempDir("fstest");
  ASSERT_TRUE(WriteFile(dir + "/b", "").ok());
  ASSERT_TRUE(WriteFile(dir + "/a", "").ok());
  ASSERT_TRUE(WriteFile(dir + "/c", "").ok());
  auto names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(FsTest, MissingFileIsError) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/nope").ok());
  EXPECT_FALSE(FileExists("/nonexistent/nope"));
}

TEST(FaultTest, UnarmedRegistryIsTransparent) {
  FaultRegistry reg;
  EXPECT_TRUE(reg.Hit("any.site").ok());
  EXPECT_EQ(reg.Hits("any.site"), 0u);  // Not even counted while unarmed.
}

TEST(FaultTest, FailNextFiresScriptedHits) {
  FaultRegistry reg;
  // Fail hits 1 and 2 (0-indexed), skipping hit 0.
  reg.FailNext("db.write", StatusCode::kIoError, /*count=*/2, /*skip=*/1);
  EXPECT_TRUE(reg.Hit("db.write").ok());
  const Status first = reg.Hit("db.write");
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_NE(first.message().find("db.write#1"), std::string::npos);
  EXPECT_FALSE(reg.Hit("db.write").ok());
  EXPECT_TRUE(reg.Hit("db.write").ok());  // Script exhausted.
  EXPECT_EQ(reg.Hits("db.write"), 4u);
  EXPECT_EQ(reg.Fires("db.write"), 2u);
}

TEST(FaultTest, ProbabilisticFiringIsDeterministicForSeed) {
  constexpr int kHits = 500;
  auto firing_pattern = [](uint64_t seed) {
    FaultRegistry reg;
    reg.FailWithProbability("s", 0.3, seed);
    std::string pattern;
    for (int i = 0; i < kHits; ++i) {
      pattern += reg.Hit("s").ok() ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = firing_pattern(7);
  EXPECT_EQ(a, firing_pattern(7));
  EXPECT_NE(a, firing_pattern(8));
  // Roughly 30% of hits fire.
  const auto fired = std::count(a.begin(), a.end(), 'X');
  EXPECT_GT(fired, kHits / 5);
  EXPECT_LT(fired, kHits / 2);
}

TEST(FaultTest, UnavailabilityWindowFollowsClock) {
  SimClock clock(0);
  FaultRegistry reg;
  reg.SetClock(&clock);
  reg.SetUnavailableBetween("hdfs", 100, 200);
  EXPECT_TRUE(reg.Hit("hdfs").ok());  // Before the window.
  clock.SetMicros(100);
  EXPECT_TRUE(reg.Hit("hdfs").IsUnavailable());
  clock.SetMicros(199);
  EXPECT_FALSE(reg.Hit("hdfs").ok());
  clock.SetMicros(200);
  EXPECT_TRUE(reg.Hit("hdfs").ok());  // Window is half-open.
}

TEST(FaultTest, OneShotHasPriorityOverProbability) {
  FaultRegistry reg;
  reg.FailWithProbability("s", 1.0, 1, StatusCode::kUnavailable);
  reg.FailNext("s", StatusCode::kAborted, /*count=*/1);
  EXPECT_TRUE(reg.Hit("s").IsAborted());       // Script wins.
  EXPECT_TRUE(reg.Hit("s").IsUnavailable());   // Then probability applies.
}

TEST(FaultTest, JournalRecordsFiringOrderAcrossSites) {
  FaultRegistry reg;
  reg.FailNext("a", StatusCode::kUnavailable, /*count=*/1);
  reg.FailNext("b", StatusCode::kUnavailable, /*count=*/1, /*skip=*/1);
  EXPECT_FALSE(reg.Hit("a").ok());
  EXPECT_TRUE(reg.Hit("b").ok());
  EXPECT_FALSE(reg.Hit("b").ok());
  EXPECT_EQ(reg.FiringJournal(),
            (std::vector<std::string>{"a#0", "b#1"}));
  reg.Reset();
  EXPECT_TRUE(reg.FiringJournal().empty());
  EXPECT_EQ(reg.Hits("a"), 0u);
}

TEST(FaultTest, ClearDisarmsOneSiteOnly) {
  FaultRegistry reg;
  reg.FailNext("x", StatusCode::kUnavailable, /*count=*/10);
  reg.FailNext("y", StatusCode::kUnavailable, /*count=*/10);
  reg.Clear("x");
  EXPECT_TRUE(reg.Hit("x").ok());
  EXPECT_FALSE(reg.Hit("y").ok());
}

TEST(RetryTest, FirstTrySuccessDoesNotSleep) {
  SimClock clock(0);
  RetryPolicy policy(&clock);
  int calls = 0;
  EXPECT_TRUE(policy.Run("op", [&] {
                      ++calls;
                      return Status::OK();
                    }).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(policy.stats().retries, 0u);
}

TEST(RetryTest, RetriesTransientFailureUntilSuccess) {
  SimClock clock(0);
  RetryOptions options;
  options.max_attempts = 5;
  options.jitter = 0;
  RetryPolicy policy(&clock, options);
  int calls = 0;
  const Status st = policy.Run("op", [&] {
    return ++calls < 3 ? Status::Unavailable("blip") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  // Slept 1ms then 2ms (exponential, no jitter) on the SimClock.
  EXPECT_EQ(clock.NowMicros(), 3000);
  EXPECT_EQ(policy.stats().attempts, 3u);
  EXPECT_EQ(policy.stats().retries, 2u);
  EXPECT_EQ(policy.stats().exhausted, 0u);
}

TEST(RetryTest, NonRetryableErrorSurfacesImmediately) {
  SimClock clock(0);
  RetryPolicy policy(&clock);
  int calls = 0;
  const Status st = policy.Run("op", [&] {
    ++calls;
    return Status::Corruption("bad bytes");
  });
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetryTest, ExhaustedBudgetAnnotatesError) {
  SimClock clock(0);
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(&clock, options);
  const Status st =
      policy.Run("flaky_op", [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(st.IsUnavailable());  // Original code is preserved.
  EXPECT_NE(st.message().find("flaky_op failed after 3 attempts"),
            std::string::npos);
  EXPECT_EQ(policy.stats().exhausted, 1u);
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.initial_backoff_micros = 1000;
  options.backoff_multiplier = 2.0;
  options.max_backoff_micros = 5000;
  options.jitter = 0;
  RetryPolicy policy(nullptr, options);
  EXPECT_EQ(policy.BackoffForRetry(0), 1000);
  EXPECT_EQ(policy.BackoffForRetry(1), 2000);
  EXPECT_EQ(policy.BackoffForRetry(2), 4000);
  EXPECT_EQ(policy.BackoffForRetry(3), 5000);  // Capped.
  EXPECT_EQ(policy.BackoffForRetry(10), 5000);
}

TEST(RetryTest, JitterBoundedAndDeterministicForSeed) {
  RetryOptions options;
  options.initial_backoff_micros = 10000;
  options.jitter = 0.5;
  options.jitter_seed = 99;
  RetryPolicy a(nullptr, options);
  RetryPolicy b(nullptr, options);
  for (int i = 0; i < 50; ++i) {
    const Micros backoff = a.BackoffForRetry(0);
    EXPECT_EQ(backoff, b.BackoffForRetry(0));  // Same seed, same draws.
    EXPECT_GE(backoff, 5000);
    EXPECT_LT(backoff, 15000);
  }
}

TEST(CostTest, SpinWaitWaitsRoughly) {
  const auto start = std::chrono::steady_clock::now();
  SpinWaitMicros(2000);
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 1900.0);
}

TEST(CostTest, ZeroAndNegativeAreNoOps) {
  SpinWaitMicros(0);
  SpinWaitMicros(-5);
  BurnCpuMicros(0);
  BurnCpuMicros(-1);
}

}  // namespace
}  // namespace fbstream
