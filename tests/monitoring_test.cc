// Tests for monitoring (auto-configured lag dashboards + alerts, §6.4) and
// the auto-scaler (the conclusion's future-work item: rebucket the input
// category and reconcile pipeline shards when a node keeps falling behind).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/fs.h"
#include "common/serde.h"
#include "core/monitoring.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "storage/hdfs/hdfs.h"

namespace fbstream::stylus {
namespace {

SchemaPtr InputSchema() {
  return Schema::Make({{"ts", ValueType::kInt64}, {"k", ValueType::kString}});
}

class CountingProcessor : public StatelessProcessor {
 public:
  void Process(const Event&, std::vector<Row>*) override {}
};

class TallyProcessor : public StatefulProcessor {
 public:
  void Process(const Event&, std::vector<Row>*) override { ++n_; }
  void OnCheckpoint(Micros, std::vector<Row>*) override {}
  std::string SerializeState() const override { return std::to_string(n_); }
  Status RestoreState(std::string_view data) override {
    n_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t n_ = 0;
};

class MonitoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("monitoring");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig config;
    config.name = "in";
    config.num_buckets = 1;
    ASSERT_TRUE(scribe_->CreateCategory(config).ok());
    pipeline_ = std::make_unique<Pipeline>(scribe_.get(), &clock_);
    ASSERT_TRUE(pipeline_->AddNode(WorkerConfig(dir_ + "/state")).ok());
  }

  NodeConfig WorkerConfig(const std::string& state_dir) {
    NodeConfig node;
    node.name = "worker";
    node.input_category = "in";
    node.input_schema = InputSchema();
    node.stateless_factory = [] {
      return std::make_unique<CountingProcessor>();
    };
    node.backend = StateBackend::kNone;
    node.state_dir = state_dir;
    node.checkpoint_every_events = 64;
    node.sink = std::make_shared<CollectingSink>();
    return node;
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  void WriteMessages(int n) {
    TextRowCodec codec(InputSchema());
    for (int i = 0; i < n; ++i) {
      Row row(InputSchema(), {Value(i), Value("k" + std::to_string(i))});
      ASSERT_TRUE(scribe_->WriteSharded("in", "k" + std::to_string(i),
                                        codec.Encode(row))
                      .ok());
    }
  }

  SimClock clock_{1};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(MonitoringTest, SamplesLagHistory) {
  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline_.get());

  WriteMessages(100);
  monitoring.Sample();
  clock_.AdvanceMicros(kMicrosPerSecond);
  WriteMessages(100);
  monitoring.Sample();

  auto history = monitoring.History("svc", "worker", 0);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].lag_messages, 100u);
  EXPECT_EQ(history[1].lag_messages, 200u);
  EXPECT_LT(history[0].time, history[1].time);
  EXPECT_TRUE(monitoring.History("svc", "nope", 0).empty());
}

TEST_F(MonitoringTest, AlertsFireOnLatestSample) {
  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline_.get());
  WriteMessages(500);
  monitoring.Sample();
  auto alerts = monitoring.ActiveAlerts(100);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].node, "worker");
  EXPECT_EQ(alerts[0].lag_messages, 500u);

  // Drain and re-sample: alert clears.
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  monitoring.Sample();
  EXPECT_TRUE(monitoring.ActiveAlerts(100).empty());
}

TEST_F(MonitoringTest, FallingBehindNeedsMonotoneGrowth) {
  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline_.get());
  for (int i = 0; i < 4; ++i) {
    WriteMessages(100);  // Lag grows every sample; nothing consumes.
    monitoring.Sample();
  }
  EXPECT_TRUE(monitoring.IsFallingBehind("svc", "worker", 0));
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  monitoring.Sample();  // Lag dropped to zero.
  EXPECT_FALSE(monitoring.IsFallingBehind("svc", "worker", 0));
}

TEST_F(MonitoringTest, ReconcileShardsPicksUpNewBuckets) {
  EXPECT_EQ(pipeline_->Shards("worker").size(), 1u);
  ASSERT_TRUE(scribe_->SetNumBuckets("in", 4).ok());
  ASSERT_TRUE(pipeline_->ReconcileShards().ok());
  EXPECT_EQ(pipeline_->Shards("worker").size(), 4u);
  // New shards consume their buckets.
  WriteMessages(200);
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  for (const auto& report : pipeline_->GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
}

TEST_F(MonitoringTest, AutoScalerRebucketsAfterSustainedLag) {
  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline_.get());
  AutoScaler::Options options;
  options.lag_threshold = 100;
  options.sustained_samples = 3;
  options.max_buckets = 8;
  AutoScaler scaler(&monitoring, scribe_.get(), options);
  scaler.RegisterPipeline("svc", pipeline_.get());

  // Two bad samples: not sustained yet.
  WriteMessages(500);
  EXPECT_TRUE(scaler.Evaluate().empty());
  EXPECT_TRUE(scaler.Evaluate().empty());
  // Third: scale up 1 -> 2 buckets.
  auto actions = scaler.Evaluate();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(scribe_->NumBuckets("in"), 2);
  EXPECT_EQ(pipeline_->Shards("worker").size(), 2u);
  EXPECT_EQ(scaler.scale_ups(), 1);

  // Lag drained resets the streak: no further scaling.
  ASSERT_TRUE(pipeline_->RunUntilQuiescent().ok());
  EXPECT_TRUE(scaler.Evaluate().empty());
  EXPECT_TRUE(scaler.Evaluate().empty());
  EXPECT_TRUE(scaler.Evaluate().empty());
  EXPECT_EQ(scribe_->NumBuckets("in"), 2);
}

TEST_F(MonitoringTest, AutoScalerForgetsStreaksOnReRegistration) {
  MonitoringService monitoring(&clock_);
  AutoScaler::Options options;
  options.lag_threshold = 100;
  options.sustained_samples = 3;
  options.max_buckets = 8;
  AutoScaler scaler(&monitoring, scribe_.get(), options);
  scaler.RegisterPipeline("svc", pipeline_.get());

  // Two bad samples against the original deployment: streak at 2 of 3.
  WriteMessages(500);
  EXPECT_TRUE(scaler.Evaluate().empty());
  EXPECT_TRUE(scaler.Evaluate().empty());

  // Redeploy the service: a fresh pipeline reuses the service/node key. The
  // stale streak must not carry over, so a full sustained window of bad
  // samples is required again before the scaler acts.
  auto fresh = std::make_unique<Pipeline>(scribe_.get(), &clock_);
  ASSERT_TRUE(fresh->AddNode(WorkerConfig(dir_ + "/state2")).ok());
  scaler.RegisterPipeline("svc", fresh.get());
  EXPECT_TRUE(scaler.Evaluate().empty());  // Streak 1, not 3.
  EXPECT_TRUE(scaler.Evaluate().empty());
  auto actions = scaler.Evaluate();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(scaler.scale_ups(), 1);
  EXPECT_EQ(scribe_->NumBuckets("in"), 2);
}

TEST_F(MonitoringTest, BackupAlertsTrackDegradedShards) {
  hdfs::HdfsCluster hdfs(dir_ + "/hdfs");
  NodeConfig node = WorkerConfig(dir_ + "/tally-state");
  node.name = "tally";
  node.stateless_factory = nullptr;
  node.stateful_factory = [] { return std::make_unique<TallyProcessor>(); };
  node.backend = StateBackend::kLocal;
  node.checkpoint_every_events = 10;
  node.hdfs = &hdfs;
  node.backup_every_checkpoints = 1;
  auto pipeline = std::make_unique<Pipeline>(scribe_.get(), &clock_);
  ASSERT_TRUE(pipeline->AddNode(node).ok());

  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline.get());
  EXPECT_TRUE(monitoring.ActiveBackupAlerts().empty());

  // HDFS outage: the shard keeps processing but pages via a backup alert
  // that reads live shard state, not samples.
  hdfs.SetAvailable(false);
  WriteMessages(20);
  ASSERT_TRUE(pipeline->RunUntilQuiescent().ok());
  clock_.AdvanceMicros(5'000'000);
  auto alerts = monitoring.ActiveBackupAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].service, "svc");
  EXPECT_EQ(alerts[0].node, "tally");
  EXPECT_GE(alerts[0].pending_backups, 1u);
  EXPECT_GE(alerts[0].degraded_for_micros, 5'000'000);

  // Recovery: the next quiescent pass resyncs and the alert clears.
  hdfs.SetAvailable(true);
  ASSERT_TRUE(pipeline->RunUntilQuiescent().ok());
  EXPECT_TRUE(monitoring.ActiveBackupAlerts().empty());
}

TEST_F(MonitoringTest, SamplingDuringParallelRoundDoesNotStallWorkers) {
  // Regression for over-wide critical sections: Sample(), ActiveBackupAlerts()
  // and AutoScaler::Evaluate() used to hold their own mutex across the whole
  // pipeline walk (which takes pipeline locks), so a round in flight could
  // wedge every History/ActiveAlerts reader behind it. Hammer the monitoring
  // surface while a 4-thread round drains a backlog; the test passes by
  // finishing (no deadlock, no TSan report) with a drained, coherent history.
  ASSERT_TRUE(scribe_->SetNumBuckets("in", 4).ok());
  Pipeline::Options options;
  options.num_threads = 4;
  auto pipeline =
      std::make_unique<Pipeline>(scribe_.get(), &clock_, options);
  ASSERT_TRUE(pipeline->AddNode(WorkerConfig(dir_ + "/par-state")).ok());

  MonitoringService monitoring(&clock_);
  monitoring.RegisterPipeline("svc", pipeline.get());
  AutoScaler::Options scaler_options;
  scaler_options.lag_threshold = 1'000'000;  // Never trips; still walks.
  AutoScaler scaler(&monitoring, scribe_.get(), scaler_options);
  scaler.RegisterPipeline("svc", pipeline.get());

  WriteMessages(2000);
  std::atomic<bool> done{false};
  std::atomic<bool> round_failed{false};
  std::thread driver([&] {
    while (true) {
      auto processed = pipeline->RunRound();
      if (!processed.ok()) {
        round_failed.store(true);
        break;
      }
      if (*processed == 0) break;
    }
    done.store(true);
  });
  // do-while: at least one full poll cycle even if the driver drains the
  // backlog before this thread gets scheduled.
  size_t polls = 0;
  do {
    monitoring.Sample();
    (void)monitoring.ActiveAlerts(1);
    (void)monitoring.ActiveBackupAlerts();
    (void)scaler.Evaluate();
    ++polls;
  } while (!done.load());
  driver.join();
  EXPECT_FALSE(round_failed.load());
  EXPECT_GT(polls, 0u);
  EXPECT_EQ(scaler.scale_ups(), 0);

  monitoring.Sample();
  for (const auto& report : pipeline->GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  auto history = monitoring.History("svc", "worker", 0);
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.back().lag_messages, 0u);
}

TEST_F(MonitoringTest, AutoScalerRespectsMaxBuckets) {
  AutoScaler::Options options;
  options.lag_threshold = 1;
  options.sustained_samples = 1;
  options.max_buckets = 2;
  MonitoringService monitoring(&clock_);
  AutoScaler scaler(&monitoring, scribe_.get(), options);
  scaler.RegisterPipeline("svc", pipeline_.get());
  WriteMessages(100);
  EXPECT_EQ(scaler.Evaluate().size(), 1u);  // 1 -> 2.
  WriteMessages(100);
  EXPECT_TRUE(scaler.Evaluate().empty());  // Capped at 2.
  EXPECT_EQ(scribe_->NumBuckets("in"), 2);
}

}  // namespace
}  // namespace fbstream::stylus
