// Tests for the embedded LSM store: write batch, memtable, WAL recovery,
// SST format, compaction, merge operators, snapshots, iterators, and the
// backup engine. Includes parameterized property sweeps comparing the DB
// against a model std::map across random workloads.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/metrics.h"
#include "storage/lsm/block_cache.h"
#include "storage/lsm/bloom.h"
#include "storage/lsm/db.h"
#include "storage/lsm/memtable.h"
#include "storage/lsm/merge_operator.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/wal.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {
namespace {

TEST(WriteBatchTest, SerializeRoundTrip) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Merge("k3", "7");
  auto decoded = WriteBatch::Deserialize(batch.Serialize());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ(decoded->ops()[0].type, EntryType::kPut);
  EXPECT_EQ(decoded->ops()[0].key, "k1");
  EXPECT_EQ(decoded->ops()[0].value, "v1");
  EXPECT_EQ(decoded->ops()[1].type, EntryType::kDelete);
  EXPECT_EQ(decoded->ops()[2].type, EntryType::kMerge);
  EXPECT_EQ(decoded->ops()[2].value, "7");
}

TEST(WriteBatchTest, RejectsCorruptInput) {
  EXPECT_FALSE(WriteBatch::Deserialize("\x05garbage").ok());
}

TEST(InternalKeyTest, OrderingIsKeyAscSeqDesc) {
  InternalKey a{"apple", 5, EntryType::kPut};
  InternalKey a_newer{"apple", 9, EntryType::kPut};
  InternalKey b{"banana", 1, EntryType::kPut};
  EXPECT_LT(a_newer.Compare(a), 0);  // Newer version first.
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(MemTableTest, NewestVisibleVersionWins) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "v1");
  mem.Add(5, EntryType::kPut, "k", "v5");
  LookupState state;
  ASSERT_TRUE(mem.Get("k", kMaxSequence, &state));
  EXPECT_TRUE(state.found_base);
  EXPECT_EQ(state.base_value, "v5");
}

TEST(MemTableTest, SequenceVisibility) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "v1");
  mem.Add(5, EntryType::kPut, "k", "v5");
  LookupState state;
  ASSERT_TRUE(mem.Get("k", 3, &state));  // Read at seq 3 sees only v1.
  EXPECT_EQ(state.base_value, "v1");
}

TEST(MemTableTest, DeleteShadowsPut) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "v");
  mem.Add(2, EntryType::kDelete, "k", "");
  LookupState state;
  ASSERT_TRUE(mem.Get("k", kMaxSequence, &state));
  EXPECT_TRUE(state.found_base);
  EXPECT_TRUE(state.base_is_delete);
}

TEST(MemTableTest, MergeOperandsCollectedOldestFirst) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "base");
  mem.Add(2, EntryType::kMerge, "k", "op1");
  mem.Add(3, EntryType::kMerge, "k", "op2");
  LookupState state;
  ASSERT_TRUE(mem.Get("k", kMaxSequence, &state));
  EXPECT_TRUE(state.found_base);
  EXPECT_EQ(state.base_value, "base");
  ASSERT_EQ(state.operands.size(), 2u);
  EXPECT_EQ(state.operands[0], "op1");
  EXPECT_EQ(state.operands[1], "op2");
}

TEST(MemTableTest, SnapshotIsSortedInternalOrder) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "b", "1");
  mem.Add(2, EntryType::kPut, "a", "2");
  mem.Add(3, EntryType::kPut, "a", "3");
  auto entries = mem.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key.user_key, "a");
  EXPECT_EQ(entries[0].key.sequence, 3u);  // Newest "a" first.
  EXPECT_EQ(entries[1].key.sequence, 2u);
  EXPECT_EQ(entries[2].key.user_key, "b");
}

TEST(WalTest, ReplayRecoversRecordsAndIgnoresTornTail) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = dir + "/wal.log";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    WriteBatch b1;
    b1.Put("a", "1");
    ASSERT_TRUE(writer.AddRecord(1, b1).ok());
    WriteBatch b2;
    b2.Put("b", "2");
    b2.Delete("a");
    ASSERT_TRUE(writer.AddRecord(2, b2).ok());
  }
  // Simulate a crash mid-append: truncate a few bytes.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  {
    std::string torn = *data + "\x13half-written garbage";
    ASSERT_TRUE(WriteFile(path, torn).ok());
  }
  std::vector<std::pair<SequenceNumber, size_t>> seen;
  ASSERT_TRUE(ReplayWal(path, [&seen](SequenceNumber seq,
                                      const WriteBatch& batch) {
                seen.emplace_back(seq, batch.size());
              }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<SequenceNumber, size_t>{1, 1}));
  EXPECT_EQ(seen[1], (std::pair<SequenceNumber, size_t>{2, 2}));
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(WalTest, ReplayMissingFileIsOk) {
  int calls = 0;
  ASSERT_TRUE(ReplayWal("/nonexistent/wal.log",
                        [&calls](SequenceNumber, const WriteBatch&) {
                          ++calls;
                        })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST(SstTest, WriteReadRoundTrip) {
  const std::string dir = MakeTempDir("sst");
  SstWriter writer;
  writer.Add(Entry{InternalKey{"apple", 3, EntryType::kPut}, "red"});
  writer.Add(Entry{InternalKey{"apple", 1, EntryType::kPut}, "green"});
  writer.Add(Entry{InternalKey{"banana", 2, EntryType::kDelete}, ""});
  writer.Add(Entry{InternalKey{"cherry", 4, EntryType::kMerge}, "+1"});
  ASSERT_TRUE(writer.Finish(dir + "/t.sst").ok());

  auto reader = SstReader::Open(dir + "/t.sst");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->smallest(), "apple");
  EXPECT_EQ((*reader)->largest(), "cherry");
  EXPECT_EQ((*reader)->max_sequence(), 4u);
  EXPECT_EQ((*reader)->num_entries(), 4u);

  LookupState state;
  ASSERT_TRUE((*reader)->Get("apple", kMaxSequence, &state));
  EXPECT_EQ(state.base_value, "red");

  LookupState old_state;
  ASSERT_TRUE((*reader)->Get("apple", 1, &old_state));
  EXPECT_EQ(old_state.base_value, "green");

  LookupState merge_state;
  ASSERT_TRUE((*reader)->Get("cherry", kMaxSequence, &merge_state));
  EXPECT_FALSE(merge_state.found_base);
  ASSERT_EQ(merge_state.operands.size(), 1u);
  EXPECT_EQ(merge_state.operands[0], "+1");
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(SstTest, IteratorSeek) {
  const std::string dir = MakeTempDir("sst");
  SstWriter writer;
  for (const char* k : {"a", "c", "e"}) {
    writer.Add(Entry{InternalKey{k, 1, EntryType::kPut}, "v"});
  }
  ASSERT_TRUE(writer.Finish(dir + "/t.sst").ok());
  auto reader = SstReader::Open(dir + "/t.sst");
  ASSERT_TRUE(reader.ok());
  auto it = (*reader)->NewIterator();
  it.Seek("b");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().key.user_key, "c");
  it.Seek("z");
  EXPECT_FALSE(it.Valid());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(SstTest, OpenRejectsCorruptFile) {
  const std::string dir = MakeTempDir("sst");
  ASSERT_TRUE(WriteFile(dir + "/bad.sst", "not an sst file at all......").ok());
  EXPECT_FALSE(SstReader::Open(dir + "/bad.sst").ok());
  ASSERT_TRUE(WriteFile(dir + "/tiny.sst", "x").ok());
  EXPECT_FALSE(SstReader::Open(dir + "/tiny.sst").ok());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(SstTest, OpenRejectsV1FormatWithCleanCorruption) {
  // A file carrying the retired v1 footer magic (flat entry array, before
  // the block-based v2 bump — see DESIGN.md "LSM concurrency model"). The
  // reader must reject it with a descriptive Corruption, never misparse it.
  const std::string dir = MakeTempDir("sst");
  std::string v1 = "pretend-v1-entry-payload";
  PutFixed64(&v1, 0);                     // v1 "entries offset" footer field.
  PutFixed64(&v1, v1.size());             // Second footer field.
  PutFixed64(&v1, 0xfb57ab1e00c0ffeeULL);  // kSstMagicV1.
  ASSERT_TRUE(WriteFile(dir + "/old.sst", v1).ok());
  const auto opened = SstReader::Open(dir + "/old.sst");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption) << opened.status();
  EXPECT_NE(opened.status().message().find("no longer supported"),
            std::string::npos)
      << opened.status();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(BlockCacheTest, LruEvictionAndGlobalMetrics) {
  auto* hit = MetricsRegistry::Global()->GetCounter("lsm.block_cache.hit");
  auto* miss = MetricsRegistry::Global()->GetCounter("lsm.block_cache.miss");
  auto* evict = MetricsRegistry::Global()->GetCounter("lsm.block_cache.evict");
  const uint64_t hit0 = hit->value();
  const uint64_t miss0 = miss->value();
  const uint64_t evict0 = evict->value();

  BlockCache cache(2048);  // Room for exactly two 1 KiB blocks.
  const uint64_t file = BlockCache::NextFileId();
  auto make_block = [] {
    auto block = std::make_shared<SstBlock>();
    block->charge = 1024;
    return block;
  };
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);  // Cold miss.
  cache.Insert(file, 0, make_block());
  cache.Insert(file, 4096, make_block());
  EXPECT_NE(cache.Lookup(file, 0), nullptr);  // Hit; offset 0 becomes MRU.
  cache.Insert(file, 8192, make_block());     // Over capacity: evicts 4096.
  EXPECT_NE(cache.Lookup(file, 0), nullptr);
  EXPECT_EQ(cache.Lookup(file, 4096), nullptr);

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.blocks, 2u);
  EXPECT_EQ(stats.bytes, 2048u);

  // The same counts flow through the process-wide registry (what Scuba-side
  // dashboards read), not just the per-instance stats.
  EXPECT_EQ(hit->value() - hit0, 2u);
  EXPECT_EQ(miss->value() - miss0, 2u);
  EXPECT_EQ(evict->value() - evict0, 1u);

  // An evicted block stays alive while a reader still pins it.
  auto pinned = cache.Lookup(file, 8192);
  ASSERT_NE(pinned, nullptr);
  cache.EraseFile(file);
  EXPECT_EQ(cache.GetStats().blocks, 0u);
  EXPECT_EQ(pinned->charge, 1024u);

  // Ids never collide across readers, so two files caching the same offset
  // coexist.
  const uint64_t other = BlockCache::NextFileId();
  EXPECT_NE(other, file);
}

TEST(MergeOperatorTest, Int64Add) {
  auto op = MakeInt64AddOperator();
  std::string result;
  const std::string base = "10";
  ASSERT_TRUE(op->FullMerge("k", &base, {"5", "-3"}, &result));
  EXPECT_EQ(result, "12");
  ASSERT_TRUE(op->FullMerge("k", nullptr, {"5"}, &result));
  EXPECT_EQ(result, "5");
  ASSERT_TRUE(op->PartialMerge("k", "2", "3", &result));
  EXPECT_EQ(result, "5");
}

TEST(MergeOperatorTest, StringAppend) {
  auto op = MakeStringAppendOperator(',');
  std::string result;
  const std::string base = "a";
  ASSERT_TRUE(op->FullMerge("k", &base, {"b", "c"}, &result));
  EXPECT_EQ(result, "a,b,c");
  ASSERT_TRUE(op->FullMerge("k", nullptr, {"x"}, &result));
  EXPECT_EQ(result, "x");
}

TEST(MergeOperatorTest, Int64Max) {
  auto op = MakeInt64MaxOperator();
  std::string result;
  const std::string base = "10";
  ASSERT_TRUE(op->FullMerge("k", &base, {"5", "30", "7"}, &result));
  EXPECT_EQ(result, "30");
}


TEST(BloomFilterTest, NoFalseNegatives) {
  // Property: every inserted key must pass MayContain, across sizes.
  for (const size_t n : {1u, 10u, 100u, 5000u}) {
    BloomFilter filter(n);
    for (size_t i = 0; i < n; ++i) {
      filter.Add("key" + std::to_string(i));
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(filter.MayContain("key" + std::to_string(i))) << n;
    }
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  constexpr int kKeys = 10000;
  BloomFilter filter(kKeys);
  for (int i = 0; i < kKeys; ++i) filter.Add("key" + std::to_string(i));
  int false_positives = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  // ~1% expected at 10 bits/key; allow generous slack.
  EXPECT_LT(false_positives, kKeys / 25);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter filter(100);
  for (int i = 0; i < 100; ++i) filter.Add("k" + std::to_string(i));
  BloomFilter back = BloomFilter::Deserialize(filter.Serialize());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(back.MayContain("k" + std::to_string(i)));
  }
  // Empty filters exclude nothing (cannot prove absence).
  BloomFilter empty = BloomFilter::Deserialize("");
  EXPECT_TRUE(empty.MayContain("anything"));
}

TEST(SstTest, BloomFilterSkipsAbsentKeys) {
  const std::string dir = MakeTempDir("sst_bloom");
  SstWriter writer;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    writer.Add(Entry{InternalKey{key, 1, EntryType::kPut}, "v"});
  }
  ASSERT_TRUE(writer.Finish(dir + "/t.sst").ok());
  auto reader = SstReader::Open(dir + "/t.sst");
  ASSERT_TRUE(reader.ok());
  // Present keys always found; absent keys overwhelmingly rejected by the
  // filter (and in all cases correctly reported absent).
  LookupState state;
  EXPECT_TRUE((*reader)->Get("k000500", kMaxSequence, &state));
  int rejected_by_filter = 0;
  for (int i = 0; i < 1000; ++i) {
    LookupState miss;
    if (!(*reader)->bloom().MayContain("missing" + std::to_string(i))) {
      ++rejected_by_filter;
    }
    EXPECT_FALSE(
        (*reader)->Get("missing" + std::to_string(i), kMaxSequence, &miss));
  }
  EXPECT_GT(rejected_by_filter, 950);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// ---------------------------------------------------------------------------
// Full-DB tests.

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("lsmdb"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::unique_ptr<Db> OpenDb(DbOptions options = {}) {
    auto db = Db::Open(options, dir_ + "/db");
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(db).value();
  }

  std::string dir_;
};

TEST_F(DbTest, PutGetDelete) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  auto got = db->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST_F(DbTest, GetMissingIsNotFound) {
  auto db = OpenDb();
  EXPECT_TRUE(db->Get("nope").status().IsNotFound());
}

TEST_F(DbTest, OverwriteTakesEffect) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v1").ok());
  ASSERT_TRUE(db->Put("k", "v2").ok());
  EXPECT_EQ(*db->Get("k"), "v2");
}

TEST_F(DbTest, WriteBatchIsAtomicAcrossRecovery) {
  {
    auto db = OpenDb();
    WriteBatch batch;
    batch.Put("a", "1");
    batch.Put("b", "2");
    batch.Delete("a");
    ASSERT_TRUE(db->Write(batch).ok());
  }
  auto db = OpenDb();  // Recovers from WAL.
  EXPECT_TRUE(db->Get("a").status().IsNotFound());
  EXPECT_EQ(*db->Get("b"), "2");
}

TEST_F(DbTest, RecoveryFromWalOnly) {
  {
    auto db = OpenDb();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(i), "value" + std::to_string(i))
              .ok());
    }
    // No flush: all data lives in WAL + memtable.
  }
  auto db = OpenDb();
  for (int i = 0; i < 100; ++i) {
    auto got = db->Get("key" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "key" << i;
    EXPECT_EQ(*got, "value" + std::to_string(i));
  }
}

TEST_F(DbTest, RecoveryAfterFlushAndMore) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("flushed", "f").ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Put("unflushed", "u").ok());
  }
  auto db = OpenDb();
  EXPECT_EQ(*db->Get("flushed"), "f");
  EXPECT_EQ(*db->Get("unflushed"), "u");
  // Sequence numbers continue past recovery.
  const SequenceNumber before = db->LatestSequence();
  ASSERT_TRUE(db->Put("more", "m").ok());
  EXPECT_GT(db->LatestSequence(), before);
}

TEST_F(DbTest, FlushMakesL0AndClearsMemtable) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto stats = db->GetStats();
  EXPECT_EQ(stats.l0_files, 1);
  EXPECT_EQ(stats.memtable_entries, 0u);
  EXPECT_EQ(*db->Get("k"), "v");
}

TEST_F(DbTest, AutomaticFlushOnMemtableSize) {
  DbOptions options;
  options.memtable_bytes = 1024;
  auto db = OpenDb(options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(db->GetStats().flushes, 0u);
  EXPECT_EQ(*db->Get("key0"), std::string(64, 'x'));
}

TEST_F(DbTest, CompactionMergesLevels) {
  DbOptions options;
  options.l0_compaction_trigger = 2;
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("a", "2").ok());
  ASSERT_TRUE(db->Put("b", "3").ok());
  ASSERT_TRUE(db->Flush().ok());  // Triggers compaction (2 L0 files).
  const auto stats = db->GetStats();
  EXPECT_EQ(stats.l0_files, 0);
  EXPECT_GE(stats.l1_files, 1);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(*db->Get("a"), "2");
  EXPECT_EQ(*db->Get("b"), "3");
}

TEST_F(DbTest, CompactionDropsTombstonesAtBottom) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("gone", "v").ok());
  ASSERT_TRUE(db->Delete("gone").ok());
  ASSERT_TRUE(db->Put("kept", "v").ok());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->Get("gone").status().IsNotFound());
  EXPECT_EQ(*db->Get("kept"), "v");
  // Only one live entry should remain.
  int n = 0;
  for (auto it = db->NewIterator(); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 1);
}

TEST_F(DbTest, MergeResolvesAcrossLayersAndCompaction) {
  DbOptions options;
  options.merge_operator = MakeInt64AddOperator();
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Merge("counter", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Merge("counter", "10").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Merge("counter", "100").ok());
  EXPECT_EQ(*db->Get("counter"), "111");

  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(*db->Get("counter"), "111");
  ASSERT_TRUE(db->Merge("counter", "1000").ok());
  EXPECT_EQ(*db->Get("counter"), "1111");
}

TEST_F(DbTest, MergeAfterDeleteStartsFresh) {
  DbOptions options;
  options.merge_operator = MakeInt64AddOperator();
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("c", "100").ok());
  ASSERT_TRUE(db->Delete("c").ok());
  ASSERT_TRUE(db->Merge("c", "5").ok());
  EXPECT_EQ(*db->Get("c"), "5");
}

TEST_F(DbTest, MergeWithoutOperatorFails) {
  auto db = OpenDb();
  EXPECT_FALSE(db->Merge("k", "1").ok());
}

TEST_F(DbTest, SnapshotPinsView) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "old").ok());
  const DbSnapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "new").ok());
  ASSERT_TRUE(db->Delete("other").ok());
  EXPECT_EQ(*db->Get("k", snap), "old");
  EXPECT_EQ(*db->Get("k"), "new");
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, SnapshotSurvivesFlushAndCompaction) {
  DbOptions options;
  options.l0_compaction_trigger = 100;  // Manual control.
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("k", "v1").ok());
  const DbSnapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "v2").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(*db->Get("k", snap), "v1");
  EXPECT_EQ(*db->Get("k"), "v2");
  db->ReleaseSnapshot(snap);
  // After release, compaction may collapse history.
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(*db->Get("k"), "v2");
}

TEST_F(DbTest, IteratorSeesResolvedView) {
  DbOptions options;
  options.merge_operator = MakeInt64AddOperator();
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Put("b", "x").ok());
  ASSERT_TRUE(db->Delete("b").ok());
  ASSERT_TRUE(db->Merge("c", "2").ok());
  ASSERT_TRUE(db->Merge("c", "3").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("d", "4").ok());  // Memtable layer.

  std::vector<std::pair<std::string, std::string>> seen;
  for (auto it = db->NewIterator(); it.Valid(); it.Next()) {
    seen.emplace_back(it.key(), it.value());
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::string>{"c", "5"}));
  EXPECT_EQ(seen[2], (std::pair<std::string, std::string>{"d", "4"}));
}

TEST_F(DbTest, IteratorSeek) {
  auto db = OpenDb();
  for (const char* k : {"a", "c", "e", "g"}) {
    ASSERT_TRUE(db->Put(k, "v").ok());
  }
  auto it = db->NewIterator();
  it.Seek("d");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "e");
  it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "g");
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST_F(DbTest, IteratorRespectsSnapshot) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("a", "old").ok());
  const DbSnapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("a", "new").ok());
  ASSERT_TRUE(db->Put("b", "post-snap").ok());
  auto it = db->NewIterator(snap);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "a");
  EXPECT_EQ(it.value(), "old");
  it.Next();
  EXPECT_FALSE(it.Valid());  // "b" is invisible.
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, BackupAndRestore) {
  auto db = OpenDb();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Delete("k7").ok());
  const std::string backup_dir = dir_ + "/backup";
  ASSERT_TRUE(db->CreateBackupToDir(backup_dir).ok());

  // More writes after the backup are not part of it.
  ASSERT_TRUE(db->Put("post-backup", "x").ok());

  const std::string restore_dir = dir_ + "/restored";
  ASSERT_TRUE(Db::RestoreBackupFromDir(backup_dir, restore_dir).ok());
  auto restored = Db::Open({}, restore_dir);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*(*restored)->Get("k3"), "v3");
  EXPECT_TRUE((*restored)->Get("k7").status().IsNotFound());
  EXPECT_TRUE((*restored)->Get("post-backup").status().IsNotFound());
}

TEST_F(DbTest, RestoreRefusesToClobber) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->CreateBackupToDir(dir_ + "/backup").ok());
  EXPECT_FALSE(Db::RestoreBackupFromDir(dir_ + "/backup", dir_ + "/db").ok());
}

// Property sweep: the DB must agree with a model std::map under random
// workloads of puts/deletes/merges with interleaved flush/compact/reopen.
struct WorkloadParams {
  uint64_t seed;
  int ops;
  int key_space;
  bool use_merge;
};

class DbPropertyTest : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(DbPropertyTest, MatchesModelMap) {
  const WorkloadParams p = GetParam();
  const std::string dir = MakeTempDir("lsmprop");
  DbOptions options;
  options.memtable_bytes = 2048;  // Force frequent flushes.
  options.l0_compaction_trigger = 3;
  if (p.use_merge) options.merge_operator = MakeInt64AddOperator();

  auto opened = Db::Open(options, dir + "/db");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Db> db = std::move(opened).value();

  std::map<std::string, int64_t> model;
  Rng rng(p.seed);
  for (int i = 0; i < p.ops; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(p.key_space));
    const double dice = rng.NextDouble();
    if (p.use_merge && dice < 0.5) {
      const int64_t delta = rng.UniformRange(-5, 5);
      ASSERT_TRUE(db->Merge(key, std::to_string(delta)).ok());
      model[key] += delta;  // Merge onto absent = identity 0.
    } else if (dice < 0.8) {
      const int64_t v = rng.UniformRange(0, 1000);
      ASSERT_TRUE(db->Put(key, std::to_string(v)).ok());
      model[key] = v;
    } else if (dice < 0.9) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    } else if (dice < 0.96) {
      ASSERT_TRUE(db->Flush().ok());
    } else {
      // Reopen: crash-free restart must preserve everything.
      db.reset();
      auto reopened = Db::Open(options, dir + "/db");
      ASSERT_TRUE(reopened.ok());
      db = std::move(reopened).value();
    }
  }

  // Point lookups agree.
  for (int k = 0; k < p.key_space; ++k) {
    const std::string key = "k" + std::to_string(k);
    auto got = db->Get(key);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key << ": " << got.status();
      EXPECT_EQ(*got, std::to_string(it->second)) << key;
    }
  }

  // Full scan agrees (order and content).
  std::vector<std::pair<std::string, std::string>> scanned;
  for (auto it = db->NewIterator(); it.Valid(); it.Next()) {
    scanned.emplace_back(it.key(), it.value());
  }
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, std::to_string(v));
    ++i;
  }

  // And after a full compaction, still agrees.
  ASSERT_TRUE(db->CompactAll().ok());
  for (const auto& [k, v] : model) {
    auto got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, std::to_string(v));
  }
  db.reset();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DbPropertyTest,
    ::testing::Values(WorkloadParams{1, 500, 20, false},
                      WorkloadParams{2, 500, 20, true},
                      WorkloadParams{3, 2000, 100, true},
                      WorkloadParams{4, 2000, 5, true},
                      WorkloadParams{5, 1000, 50, false},
                      WorkloadParams{6, 3000, 200, true}));

}  // namespace
}  // namespace fbstream::lsm
