// Robustness sweeps: randomized and adversarial inputs against the parsing
// and decoding surfaces. The invariant under test is uniform — malformed
// input yields an error Status (or a well-formed degenerate value), never a
// crash, hang, or sanitizer fault.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serde.h"
#include "common/value.h"
#include "puma/parser.h"
#include "storage/lsm/write_batch.h"
#include "swift/swift.h"

namespace fbstream {
namespace {

// Random printable-ish bytes with SQL-looking fragments mixed in, so the
// fuzz hits deeper parser states than pure noise would.
std::string MutatedSql(Rng* rng) {
  static const char* kFragments[] = {
      "CREATE", "APPLICATION", "TABLE", "INPUT", "SELECT", "FROM",
      "SCRIBE", "(", ")", ",", ";", "'str'", "\"cat\"", "[5 minutes]",
      "WHERE", "GROUP BY", "count(*)", "topk(x)", "AS", "JOIN LASER",
      "ON", "1.5", "42", "x", "--comment\n", "!=", "<=", "EMIT TO",
  };
  std::string out;
  const int pieces = 1 + static_cast<int>(rng->Uniform(40));
  for (int i = 0; i < pieces; ++i) {
    if (rng->Bernoulli(0.7)) {
      out += kFragments[rng->Uniform(sizeof(kFragments) /
                                     sizeof(kFragments[0]))];
    } else {
      out += rng->NextString(1 + rng->Uniform(6));
    }
    out.push_back(' ');
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, PumaParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const std::string sql = MutatedSql(&rng);
    auto spec = puma::ParseApp(sql);  // OK or error; never a crash.
    if (spec.ok()) {
      EXPECT_FALSE(spec->name.empty());
    }
  }
}

TEST_P(FuzzTest, TextRowCodecDecodesAnything) {
  Rng rng(GetParam());
  auto schema = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kDouble},
                              {"c", ValueType::kString}});
  TextRowCodec codec(schema);
  for (int i = 0; i < 2000; ++i) {
    std::string payload;
    const size_t len = rng.Uniform(64);
    for (size_t j = 0; j < len; ++j) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto row = codec.Decode(payload);
    if (row.ok()) {
      EXPECT_EQ(row->num_columns(), 3u);  // Always padded to schema width.
    }
  }
}

TEST_P(FuzzTest, BinaryRowCodecRejectsGarbageOrRoundTrips) {
  Rng rng(GetParam());
  auto schema = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kString}});
  BinaryRowCodec codec(schema);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const size_t len = rng.Uniform(48);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)codec.Decode(garbage);  // Must not crash.
  }
  // Truncation sweep over a valid encoding: every prefix is handled.
  Row row(schema, {Value(int64_t{123456}), Value("payload-string")});
  const std::string encoded = codec.Encode(row);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = codec.Decode(encoded.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix " << cut << " decoded";
  }
  auto full = codec.Decode(encoded);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, row);
}

TEST_P(FuzzTest, WriteBatchDeserializeIsTotal) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const size_t len = rng.Uniform(40);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)lsm::WriteBatch::Deserialize(garbage);  // OK or error, no crash.
  }
}

TEST_P(FuzzTest, VarintDecoderIsTotal) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    std::string bytes;
    const size_t len = rng.Uniform(12);
    for (size_t j = 0; j < len; ++j) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::string_view view(bytes);
    uint64_t value = 0;
    if (GetVarint64(&view, &value)) {
      // A successful parse consumed at most 10 bytes.
      EXPECT_LE(bytes.size() - view.size(), 10u);
    }
  }
}

TEST_P(FuzzTest, SwiftPipeFramingIsTotal) {
  Rng rng(GetParam());
  class Collector : public swift::SwiftClient {
   public:
    void HandleMessage(const std::string& m) override { total += m.size(); }
    size_t total = 0;
  };
  Collector client;
  for (int i = 0; i < 500; ++i) {
    std::string pipe_data;
    const size_t len = rng.Uniform(128);
    for (size_t j = 0; j < len; ++j) {
      pipe_data.push_back(rng.Bernoulli(0.2)
                              ? '\n'
                              : static_cast<char>(rng.Uniform(256)));
    }
    client.HandleBatch(pipe_data);  // Never crashes; frames on newlines.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fbstream
