// Tests for the parallel query/serving layer: block-parallel Scuba scans
// (parallel == serial, queries concurrent with ingest and retention),
// compiled Puma expressions (randomized differential against the
// interpreter), the Laser lock-free read path under compaction churn, and
// the query-layer bugfix sweep (percentile/TOPK validation, parser errors).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/shard_executor.h"
#include "puma/compiled_expr.h"
#include "puma/expr.h"
#include "puma/expr_parser.h"
#include "puma/lexer.h"
#include "puma/parser.h"
#include "storage/laser/laser.h"
#include "storage/scuba/scuba.h"

namespace fbstream {
namespace {

// ---------------------------------------------------------------------------
// Scuba: block-parallel execution.

using scuba::AggKind;
using scuba::FilterOp;
using scuba::Query;
using scuba::QueryResult;
using scuba::ScubaTable;

SchemaPtr EventSchema() {
  return Schema::Make({{"time", ValueType::kInt64},
                       {"app", ValueType::kString},
                       {"metric", ValueType::kString},
                       {"value", ValueType::kDouble},
                       {"user", ValueType::kString}});
}

Row MakeEvent(const SchemaPtr& schema, int64_t time, const std::string& app,
              const std::string& metric, double value,
              const std::string& user = "u") {
  return Row(schema,
             {Value(time), Value(app), Value(metric), Value(value),
              Value(user)});
}

// Deterministic workload spanning many blocks (> kBlockRows rows). Values
// are integers (exactly representable), so parallel partial sums must be
// bit-equal to the serial fold.
void FillTable(ScubaTable* table, size_t rows) {
  Rng rng(7);
  const SchemaPtr& schema = table->schema();
  for (size_t i = 0; i < rows; ++i) {
    table->AddRow(MakeEvent(
        schema, static_cast<int64_t>(i * 1000),
        "app-" + std::to_string(rng.Uniform(5)),
        rng.Bernoulli(0.5) ? "load" : "crash",
        static_cast<double>(rng.Uniform(1000)),
        "user-" + std::to_string(rng.Uniform(200))));
  }
}

std::vector<Query> RepresentativeQueries() {
  std::vector<Query> queries;
  {
    Query q;  // Plain grouped count.
    q.group_by = {"app"};
    q.aggregates.push_back({AggKind::kCount, "", 0});
    queries.push_back(q);
  }
  {
    Query q;  // Filter + multi-aggregate.
    q.filters.push_back({"metric", FilterOp::kEq, Value("load")});
    q.group_by = {"app"};
    q.aggregates.push_back({AggKind::kSum, "value", 0});
    q.aggregates.push_back({AggKind::kMin, "value", 0});
    q.aggregates.push_back({AggKind::kMax, "value", 0});
    q.aggregates.push_back({AggKind::kAvg, "value", 0});
    queries.push_back(q);
  }
  {
    Query q;  // Time series with limit.
    q.time_column = "time";
    q.bucket_micros = 1'000'000;
    q.group_by = {"app"};
    q.aggregates.push_back({AggKind::kCount, "", 0});
    q.limit = 3;
    queries.push_back(q);
  }
  {
    Query q;  // Percentile (order-sensitive merge) and uniques (HLL merge).
    q.group_by = {"metric"};
    q.aggregates.push_back({AggKind::kPercentile, "value", 0.9});
    q.aggregates.push_back({AggKind::kUniques, "user", 0});
    queries.push_back(q);
  }
  return queries;
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].bucket, b.rows[i].bucket);
    ASSERT_EQ(a.rows[i].group.size(), b.rows[i].group.size());
    for (size_t g = 0; g < a.rows[i].group.size(); ++g) {
      EXPECT_EQ(a.rows[i].group[g].ToString(), b.rows[i].group[g].ToString());
    }
    ASSERT_EQ(a.rows[i].aggregates.size(), b.rows[i].aggregates.size());
    for (size_t v = 0; v < a.rows[i].aggregates.size(); ++v) {
      // Bit-equality, not approximate: the parallel merge must reproduce
      // the serial fold exactly on this integer-valued workload.
      EXPECT_EQ(a.rows[i].aggregates[v], b.rows[i].aggregates[v])
          << "row " << i << " aggregate " << v;
    }
  }
}

TEST(ScubaParallelTest, ParallelMatchesSerialExactly) {
  ShardExecutor pool(4);
  ScubaTable serial("events", EventSchema());
  ScubaTable parallel("events", EventSchema());
  parallel.set_query_pool(&pool);
  FillTable(&serial, 3 * ScubaTable::kBlockRows + 123);
  FillTable(&parallel, 3 * ScubaTable::kBlockRows + 123);

  for (const Query& q : RepresentativeQueries()) {
    auto a = serial.Run(q);
    auto b = parallel.Run(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameResult(*a, *b);
  }
}

TEST(ScubaParallelTest, PoolSmallerThanBlockCount) {
  ShardExecutor pool(2);
  ScubaTable serial("events", EventSchema());
  ScubaTable parallel("events", EventSchema());
  parallel.set_query_pool(&pool);
  FillTable(&serial, 6 * ScubaTable::kBlockRows);
  FillTable(&parallel, 6 * ScubaTable::kBlockRows);
  Query q;
  q.group_by = {"app"};
  q.aggregates.push_back({AggKind::kSum, "value", 0});
  auto a = serial.Run(q);
  auto b = parallel.Run(q);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameResult(*a, *b);
}

TEST(ScubaParallelTest, QueriesDuringIngestSeeConsistentPrefix) {
  ShardExecutor pool(4);
  ScubaTable table("events", EventSchema());
  table.set_query_pool(&pool);
  const SchemaPtr schema = table.schema();

  constexpr size_t kRows = 20'000;
  std::atomic<size_t> published{0};
  std::thread writer([&] {
    for (size_t i = 0; i < kRows; ++i) {
      table.AddRow(MakeEvent(schema, static_cast<int64_t>(i), "app", "m", 1));
      published.store(i + 1, std::memory_order_release);
    }
  });

  Query q;
  q.aggregates.push_back({AggKind::kCount, "", 0});
  q.aggregates.push_back({AggKind::kSum, "value", 0});
  uint64_t last_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const size_t floor = published.load(std::memory_order_acquire);
    auto result = table.Run(q);
    ASSERT_TRUE(result.ok());
    if (result->rows.empty()) continue;
    const double count = result->rows[0].aggregates[0];
    const double sum = result->rows[0].aggregates[1];
    // Every row carries value 1, so sum == count exactly when the query saw
    // a consistent prefix of published rows.
    EXPECT_EQ(count, sum);
    // Monotone: a later query can't see fewer rows...
    EXPECT_GE(count, static_cast<double>(last_count));
    // ...and sees at least everything published before it started.
    EXPECT_GE(count, static_cast<double>(floor));
    last_count = static_cast<uint64_t>(count);
  }
  writer.join();
  auto final_result = table.Run(q);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->rows[0].aggregates[0], static_cast<double>(kRows));
}

TEST(ScubaParallelTest, ExpireDuringQueriesKeepsSnapshots) {
  ShardExecutor pool(2);
  ScubaTable table("events", EventSchema());
  table.set_query_pool(&pool);
  FillTable(&table, 2 * ScubaTable::kBlockRows);
  const size_t total = table.num_rows();

  std::atomic<bool> stop{false};
  std::thread reaper([&] {
    Micros horizon = 0;
    while (!stop.load()) {
      horizon += 1000 * 200;  // 200 rows per sweep.
      table.ExpireBefore("time", horizon);
    }
  });

  Query q;
  q.aggregates.push_back({AggKind::kCount, "", 0});
  for (int iter = 0; iter < 100; ++iter) {
    auto result = table.Run(q);
    ASSERT_TRUE(result.ok());
    const double count =
        result->rows.empty() ? 0 : result->rows[0].aggregates[0];
    EXPECT_LE(count, static_cast<double>(total));
  }
  stop.store(true);
  reaper.join();
}

TEST(ScubaParallelTest, ExpireBeforeDropsOnlyOldRows) {
  ScubaTable table("events", EventSchema());
  for (int i = 0; i < 100; ++i) {
    table.AddRow(MakeEvent(table.schema(), i, "app", "m", 1));
  }
  EXPECT_EQ(table.ExpireBefore("time", 40), 40u);
  EXPECT_EQ(table.num_rows(), 60u);
  Query q;
  q.aggregates.push_back({AggKind::kMin, "time", 0});
  auto result = table.Run(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0].aggregates[0], 40.0);
}

TEST(ScubaParallelTest, PercentileBoundsAreValidated) {
  ScubaTable table("events", EventSchema());
  table.AddRow(MakeEvent(table.schema(), 1, "a", "m", 1));
  for (const double bad : {-0.1, 1.5}) {
    Query q;
    q.aggregates.push_back({AggKind::kPercentile, "value", bad});
    auto result = table.Run(q);
    EXPECT_FALSE(result.ok()) << "percentile " << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundaries themselves are legal.
  for (const double ok : {0.0, 1.0}) {
    Query q;
    q.aggregates.push_back({AggKind::kPercentile, "value", ok});
    EXPECT_TRUE(table.Run(q).ok());
  }
}

TEST(ScubaParallelTest, EmptyTableAndTypeMismatchedFilters) {
  ShardExecutor pool(2);
  ScubaTable table("events", EventSchema());
  table.set_query_pool(&pool);
  Query q;
  q.group_by = {"app"};
  q.aggregates.push_back({AggKind::kSum, "value", 0});
  auto empty = table.Run(q);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->rows.empty());
  EXPECT_EQ(empty->rows_scanned, 0u);

  // Comparing a string column against an int operand uses the total order
  // (numbers sort before strings) — not a crash, not a match.
  table.AddRow(MakeEvent(table.schema(), 1, "fb4a", "m", 1));
  Query mismatch;
  mismatch.filters.push_back({"app", FilterOp::kLt, Value(int64_t{42})});
  mismatch.aggregates.push_back({AggKind::kCount, "", 0});
  auto result = table.Run(mismatch);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());

  // Aggregating a string column coerces (non-numeric -> 0), like serial.
  Query strsum;
  strsum.aggregates.push_back({AggKind::kSum, "app", 0});
  auto sum = table.Run(strsum);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->rows[0].aggregates[0], 0.0);
}

// ---------------------------------------------------------------------------
// Puma: compiled expressions vs the interpreter.

namespace pexpr {

using puma::CompiledExpr;
using puma::Expr;
using puma::ExprKind;
using puma::ExprPtr;
using puma::BinaryOp;

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumn;
  e->column = std::move(name);
  return e;
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Not(ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnaryNot;
  e->left = std::move(operand);
  return e;
}

ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->function = std::move(fn);
  e->args = std::move(args);
  return e;
}

// Bit-identical value equality: same type, and for doubles the same bits
// (operator== would call 1 == 1.0 equal, which is too weak here).
bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      const double x = a.AsDouble();
      const double y = b.AsDouble();
      return std::memcmp(&x, &y, sizeof(double)) == 0;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

// Random expression over columns {i, d, s, n} (int, double, string, always-
// null) plus a sometimes-referenced missing column, all builtins, and an
// unknown function.
ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    switch (rng->Uniform(8)) {
      case 0:
        return Lit(Value(rng->UniformRange(-100, 100)));
      case 1:
        return Lit(Value(static_cast<double>(rng->UniformRange(-50, 50)) / 4));
      case 2:
        return Lit(Value(rng->NextString(3)));
      case 3:
        return Lit(Value());  // NULL literal.
      case 4:
        return Col("i");
      case 5:
        return Col("d");
      case 6:
        return Col("s");
      default:
        return rng->Bernoulli(0.5) ? Col("n") : Col("missing_col");
    }
  }
  switch (rng->Uniform(4)) {
    case 0: {
      static const BinaryOp kOps[] = {
          BinaryOp::kAnd, BinaryOp::kOr, BinaryOp::kEq, BinaryOp::kNe,
          BinaryOp::kLt,  BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe,
          BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
          BinaryOp::kMod};
      const BinaryOp op = kOps[rng->Uniform(std::size(kOps))];
      return Bin(op, RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    }
    case 1:
      return Not(RandomExpr(rng, depth - 1));
    case 2: {
      struct Fn {
        const char* name;
        size_t arity;
      };
      static const Fn kFns[] = {{"LOWER", 1},    {"UPPER", 1},
                                {"LENGTH", 1},   {"CONCAT", 2},
                                {"CONTAINS", 2}, {"SUBSTR", 3},
                                {"IF", 3},       {"ABS", 1},
                                {"ROUND", 1},    {"NO_SUCH_FN", 2}};
      const Fn& fn = kFns[rng->Uniform(std::size(kFns))];
      std::vector<ExprPtr> args;
      for (size_t i = 0; i < fn.arity; ++i) {
        args.push_back(RandomExpr(rng, depth - 1));
      }
      return Call(fn.name, std::move(args));
    }
    default:
      return RandomExpr(rng, depth - 1);
  }
}

TEST(CompiledExprTest, RandomizedDifferentialAgainstInterpreter) {
  const SchemaPtr schema = Schema::Make({{"i", ValueType::kInt64},
                                         {"d", ValueType::kDouble},
                                         {"s", ValueType::kString},
                                         {"n", ValueType::kString}});
  Rng rng(20260809);
  for (int round = 0; round < 2000; ++round) {
    const ExprPtr expr = RandomExpr(&rng, 4);
    const CompiledExpr compiled = CompiledExpr::Compile(*expr, schema);
    for (int r = 0; r < 5; ++r) {
      Row row(schema, {Value(rng.UniformRange(-1000, 1000)),
                       Value(rng.NextDouble() * 100 - 50),
                       Value(rng.NextString(4)), Value()});
      const Value expect = puma::EvalExpr(*expr, row);
      const Value got = compiled.Eval(row);
      ASSERT_TRUE(BitIdentical(expect, got))
          << "expr " << expr->ToString() << " interp=" << expect.ToString()
          << " compiled=" << got.ToString();
      ASSERT_EQ(puma::EvalPredicate(*expr, row), compiled.EvalBool(row));
    }
  }
}

TEST(CompiledExprTest, RowWithForeignSchemaFallsBackToNameLookup) {
  const SchemaPtr declared = Schema::Make({{"a", ValueType::kInt64},
                                           {"b", ValueType::kInt64}});
  // Same column names, different order: index shortcuts would read the
  // wrong cell if the compiled closure ignored the row's actual schema.
  const SchemaPtr reordered = Schema::Make({{"b", ValueType::kInt64},
                                            {"a", ValueType::kInt64}});
  const ExprPtr expr =
      Bin(puma::BinaryOp::kSub, Col("a"), Col("b"));
  const CompiledExpr compiled = CompiledExpr::Compile(*expr, declared);
  Row row(reordered, {Value(int64_t{7}), Value(int64_t{100})});
  EXPECT_TRUE(BitIdentical(puma::EvalExpr(*expr, row), compiled.Eval(row)));
  EXPECT_EQ(compiled.Eval(row).AsInt64(), 93);  // a=100, b=7.
}

TEST(CompiledExprTest, ConstantFoldingIsPureOnly) {
  const SchemaPtr schema = Schema::Make({{"x", ValueType::kInt64}});
  // Pure builtin over constants folds.
  const ExprPtr folded = Call("LENGTH", {Lit(Value("hello"))});
  const CompiledExpr c1 = CompiledExpr::Compile(*folded, schema);
  EXPECT_TRUE(c1.is_constant());
  EXPECT_EQ(c1.Eval(Row(schema, {Value(int64_t{0})})).AsInt64(), 5);

  // A UDF call never folds, even over constants: it may be stateful.
  puma::UdfRegistry udfs;
  ASSERT_TRUE(udfs.Register("TICKER", [](const std::vector<Value>&) {
                     static int64_t calls = 0;
                     return Value(++calls);
                   })
                  .ok());
  const ExprPtr udf_call = Call("TICKER", {Lit(Value(int64_t{1}))});
  const CompiledExpr c2 = CompiledExpr::Compile(*udf_call, schema, &udfs);
  EXPECT_FALSE(c2.is_constant());
  const Row row(schema, {Value(int64_t{0})});
  const int64_t first = c2.Eval(row).AsInt64();
  EXPECT_EQ(c2.Eval(row).AsInt64(), first + 1);
}

TEST(CompiledExprTest, CompileOnceIgnoresLaterUdfRegistration) {
  const SchemaPtr schema = Schema::Make({{"x", ValueType::kInt64}});
  puma::UdfRegistry udfs;
  ASSERT_TRUE(
      udfs.Register("SCALE", [](const std::vector<Value>& args) {
             return Value(args[0].CoerceInt64() * 2);
           })
          .ok());
  const ExprPtr expr = Call("SCALE", {Col("x")});
  const CompiledExpr compiled = CompiledExpr::Compile(*expr, schema, &udfs);
  // Re-register with different behavior: the deployed app keeps the old one
  // (compile-once contract); the interpreter sees the new one.
  ASSERT_TRUE(
      udfs.Register("SCALE", [](const std::vector<Value>& args) {
             return Value(args[0].CoerceInt64() * 100);
           })
          .ok());
  const Row row(schema, {Value(int64_t{3})});
  EXPECT_EQ(compiled.Eval(row).AsInt64(), 6);
  EXPECT_EQ(puma::EvalExpr(*expr, row, &udfs).AsInt64(), 300);
}

TEST(CompiledExprTest, ShortCircuitSkipsRightHandUdf) {
  const SchemaPtr schema = Schema::Make({{"x", ValueType::kInt64}});
  puma::UdfRegistry udfs;
  int calls = 0;
  ASSERT_TRUE(udfs.Register("BOOM", [&calls](const std::vector<Value>&) {
                     ++calls;
                     return Value(int64_t{1});
                   })
                  .ok());
  const ExprPtr gate = Bin(puma::BinaryOp::kAnd, Col("x"),
                           Call("BOOM", std::vector<ExprPtr>{}));
  const CompiledExpr compiled = CompiledExpr::Compile(*gate, schema, &udfs);
  EXPECT_EQ(compiled.Eval(Row(schema, {Value(int64_t{0})})).AsInt64(), 0);
  EXPECT_EQ(calls, 0);  // Right side never ran.
  EXPECT_EQ(compiled.Eval(Row(schema, {Value(int64_t{1})})).AsInt64(), 1);
  EXPECT_EQ(calls, 1);
}

// Parser-level validation (bugfix sweep).

StatusOr<puma::ExprPtr> ParseOne(const std::string& text) {
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<puma::Token> tokens,
                            puma::Tokenize(text));
  puma::TokenCursor cursor(std::move(tokens));
  return puma::ParseExpression(&cursor);
}

TEST(ExprParserTest, ErrorsNameTheOffendingToken) {
  auto result = ParseOne("LENGTH(name");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at end of input"),
            std::string::npos)
      << result.status().message();

  auto bad = ParseOne("a + + b");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("near '+'"), std::string::npos)
      << bad.status().message();
}

puma::SelectItem MakeAggItem(const std::string& fn,
                             std::vector<ExprPtr> args) {
  puma::SelectItem item;
  item.expr = Call(fn, std::move(args));
  item.is_aggregate = true;
  return item;
}

TEST(ExprParserTest, ClassifyAggregateValidatesTopKAndPercentile) {
  auto bad_k = MakeAggItem("TOPK", {Col("score"), Lit(Value(int64_t{0}))});
  EXPECT_FALSE(puma::ClassifyAggregate(&bad_k).ok());

  auto nonlit_k = MakeAggItem("TOPK", {Col("score"), Col("k")});
  EXPECT_FALSE(puma::ClassifyAggregate(&nonlit_k).ok());

  auto good_k = MakeAggItem("TOPK", {Col("score"), Lit(Value(int64_t{5}))});
  ASSERT_TRUE(puma::ClassifyAggregate(&good_k).ok());
  EXPECT_EQ(good_k.topk_k, 5);

  auto bad_p = MakeAggItem("PERCENTILE", {Col("v"), Lit(Value(1.5))});
  EXPECT_FALSE(puma::ClassifyAggregate(&bad_p).ok());
  auto neg_p = MakeAggItem("PERCENTILE", {Col("v"), Lit(Value(-0.5))});
  EXPECT_FALSE(puma::ClassifyAggregate(&neg_p).ok());

  auto good_p = MakeAggItem("PERCENTILE", {Col("v"), Lit(Value(0.99))});
  ASSERT_TRUE(puma::ClassifyAggregate(&good_p).ok());
  EXPECT_DOUBLE_EQ(good_p.percentile, 0.99);
}

}  // namespace pexpr

// ---------------------------------------------------------------------------
// Laser: lock-free reads under compaction churn.

TEST(LaserReadPathTest, ConcurrentReadsDuringIngestAndCompaction) {
  const std::string dir = MakeTempDir("laser_read");
  SimClock clock(1'000'000);
  const SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                         {"payload", ValueType::kString}});
  laser::LaserAppConfig config;
  config.name = "churn";
  config.input_schema = schema;
  config.key_columns = {"k"};
  config.value_columns = {"payload"};
  // Tiny memtable so ingestion constantly flushes and compacts underneath
  // the readers.
  config.db_options.memtable_bytes = 16 << 10;
  config.db_options.l0_compaction_trigger = 2;

  auto app_or = laser::LaserApp::Create(config, nullptr, &clock, dir);
  ASSERT_TRUE(app_or.ok());
  laser::LaserApp* app = app_or->get();

  constexpr int64_t kKeys = 500;
  auto payload_for = [](int64_t k, int version) {
    return "v" + std::to_string(version) + "-" + std::to_string(k);
  };
  auto load_version = [&](int version) {
    std::vector<Row> rows;
    rows.reserve(kKeys);
    for (int64_t k = 0; k < kKeys; ++k) {
      rows.emplace_back(schema,
                        std::vector<Value>{Value(k),
                                           Value(payload_for(k, version))});
    }
    ASSERT_TRUE(app->LoadRows(rows).ok());
  };
  load_version(0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t k = static_cast<int64_t>(rng.Uniform(kKeys));
        auto row = app->Get(Value(k));
        ASSERT_TRUE(row.ok()) << row.status();
        // The payload is always a complete version of this key — never a
        // torn mix — whatever flush/compaction is doing.
        const std::string& payload = row->Get(0).AsString();
        EXPECT_EQ(payload.substr(payload.find('-') + 1), std::to_string(k));
        ok_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int version = 1; version <= 20; ++version) {
    load_version(version);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(ok_reads.load(), 0u);
  EXPECT_GE(app->num_queries(), ok_reads.load());
  app_or->reset();  // Stop the DB's maintenance thread before deleting dir.
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(LaserReadPathTest, GetIntoMatchesGetSemantics) {
  const std::string dir = MakeTempDir("laser_getinto");
  SimClock clock(1'000'000);
  const SchemaPtr schema = Schema::Make({{"k", ValueType::kString},
                                         {"v", ValueType::kString}});
  laser::LaserAppConfig config;
  config.name = "basic";
  config.input_schema = schema;
  config.key_columns = {"k"};
  config.value_columns = {"v"};
  auto app_or = laser::LaserApp::Create(config, nullptr, &clock, dir);
  ASSERT_TRUE(app_or.ok());
  laser::LaserApp* app = app_or->get();
  ASSERT_TRUE(
      app->LoadRows({Row(schema, {Value("hello"), Value("world")})}).ok());

  auto hit = app->Get(Value("hello"));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->Get(0).AsString(), "world");
  auto miss = app->Get(Value("absent"));
  EXPECT_TRUE(miss.status().IsNotFound());
  // Mixed hit/miss sequences on one thread must not let the reused scratch
  // leak a previous value into a miss or vice versa.
  auto hit2 = app->Get(Value("hello"));
  ASSERT_TRUE(hit2.ok());
  EXPECT_EQ(hit2->Get(0).AsString(), "world");
  app_or->reset();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream
