// Tests for Laser: app configuration, realtime Scribe ingestion, key/value
// column projection, TTL expiry, Hive bulk loads, deploy/delete.

#include <gtest/gtest.h>

#include "common/fs.h"
#include "common/serde.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"

namespace fbstream::laser {
namespace {

class LaserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("laser");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    scribe::CategoryConfig config;
    config.name = "dim_stream";
    config.num_buckets = 2;
    ASSERT_TRUE(scribe_->CreateCategory(config).ok());
    schema_ = Schema::Make({{"dim_id", ValueType::kInt64},
                            {"language", ValueType::kString},
                            {"country", ValueType::kString}});
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  LaserAppConfig BaseConfig() {
    LaserAppConfig config;
    config.name = "dims";
    config.scribe_category = "dim_stream";
    config.input_schema = schema_;
    config.key_columns = {"dim_id"};
    config.value_columns = {"language", "country"};
    return config;
  }

  void WriteDim(int64_t id, const std::string& lang,
                const std::string& country) {
    TextRowCodec codec(schema_);
    Row row(schema_, {Value(id), Value(lang), Value(country)});
    ASSERT_TRUE(
        scribe_->WriteSharded("dim_stream", std::to_string(id),
                              codec.Encode(row))
            .ok());
  }

  std::string dir_;
  SimClock clock_{1'000'000};
  std::unique_ptr<scribe::Scribe> scribe_;
  SchemaPtr schema_;
};

TEST_F(LaserTest, IngestAndGet) {
  auto app = LaserApp::Create(BaseConfig(), scribe_.get(), &clock_,
                              dir_ + "/dims");
  ASSERT_TRUE(app.ok()) << app.status();
  WriteDim(42, "en", "US");
  WriteDim(7, "pt", "BR");
  auto ingested = (*app)->PollOnce();
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(*ingested, 2u);

  auto row = (*app)->Get(Value(42));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->Get("language").AsString(), "en");
  EXPECT_EQ(row->Get("country").AsString(), "US");

  EXPECT_TRUE((*app)->Get(Value(999)).status().IsNotFound());
}

TEST_F(LaserTest, LatestWriteWinsPerKey) {
  auto app = LaserApp::Create(BaseConfig(), scribe_.get(), &clock_,
                              dir_ + "/dims");
  ASSERT_TRUE(app.ok());
  WriteDim(1, "en", "US");
  WriteDim(1, "fr", "FR");
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto row = (*app)->Get(Value(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->Get("language").AsString(), "fr");
}

TEST_F(LaserTest, TtlExpiresKeys) {
  LaserAppConfig config = BaseConfig();
  config.ttl_micros = 10 * kMicrosPerSecond;
  auto app = LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/ttl");
  ASSERT_TRUE(app.ok());
  WriteDim(5, "de", "DE");
  ASSERT_TRUE((*app)->PollOnce().ok());
  EXPECT_TRUE((*app)->Get(Value(5)).ok());
  clock_.AdvanceMicros(11 * kMicrosPerSecond);
  EXPECT_TRUE((*app)->Get(Value(5)).status().IsNotFound());
}

TEST_F(LaserTest, MultiColumnKeys) {
  LaserAppConfig config = BaseConfig();
  config.key_columns = {"language", "country"};
  config.value_columns = {"dim_id"};
  auto app = LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/mc");
  ASSERT_TRUE(app.ok());
  WriteDim(10, "en", "US");
  WriteDim(11, "en", "GB");
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto us = (*app)->Get({Value("en"), Value("US")});
  ASSERT_TRUE(us.ok());
  EXPECT_EQ(us->Get("dim_id").AsInt64(), 10);
  auto gb = (*app)->Get({Value("en"), Value("GB")});
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(gb->Get("dim_id").AsInt64(), 11);
}

TEST_F(LaserTest, MultiGet) {
  auto app = LaserApp::Create(BaseConfig(), scribe_.get(), &clock_,
                              dir_ + "/mg");
  ASSERT_TRUE(app.ok());
  WriteDim(1, "en", "US");
  WriteDim(2, "es", "MX");
  ASSERT_TRUE((*app)->PollOnce().ok());
  auto results = (*app)->MultiGet({{Value(1)}, {Value(2)}, {Value(3)}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].status().IsNotFound());
}

TEST_F(LaserTest, RejectsBadConfigs) {
  LaserAppConfig config = BaseConfig();
  config.key_columns = {"no_such_column"};
  EXPECT_FALSE(
      LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/bad").ok());

  config = BaseConfig();
  config.key_columns.clear();
  EXPECT_FALSE(
      LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/bad2").ok());

  config = BaseConfig();
  config.scribe_category = "missing_category";
  EXPECT_FALSE(
      LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/bad3").ok());
}

TEST_F(LaserTest, LoadFromHiveOnceADay) {
  // §2.5: "Laser can read ... from any Hive table once a day."
  hive::Hive hive(dir_ + "/hive");
  ASSERT_TRUE(hive.CreateTable("dim_daily", schema_).ok());
  std::vector<Row> rows;
  rows.emplace_back(schema_, std::vector<Value>{Value(100), Value("jp"),
                                                Value("JP")});
  rows.emplace_back(schema_, std::vector<Value>{Value(101), Value("ko"),
                                                Value("KR")});
  ASSERT_TRUE(hive.WritePartition("dim_daily", "2016-02-01", rows).ok());
  ASSERT_TRUE(hive.LandPartition("dim_daily", "2016-02-01").ok());

  LaserAppConfig config = BaseConfig();
  config.scribe_category.clear();  // Hive-only app.
  auto app = LaserApp::Create(config, scribe_.get(), &clock_, dir_ + "/hv");
  ASSERT_TRUE(app.ok()) << app.status();
  ASSERT_TRUE((*app)->LoadFromHive(hive, "dim_daily", "2016-02-01").ok());
  auto row = (*app)->Get(Value(100));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->Get("language").AsString(), "jp");
}

TEST_F(LaserTest, ServiceDeployAndDelete) {
  Laser service(scribe_.get(), &clock_, dir_ + "/svc");
  ASSERT_TRUE(service.DeployApp(BaseConfig()).ok());
  EXPECT_EQ(service.DeployApp(BaseConfig()).code(),
            StatusCode::kAlreadyExists);
  ASSERT_NE(service.GetApp("dims"), nullptr);
  EXPECT_EQ(service.ListApps(), std::vector<std::string>{"dims"});

  WriteDim(1, "en", "US");
  service.PollAll();
  EXPECT_TRUE(service.GetApp("dims")->Get(Value(1)).ok());

  ASSERT_TRUE(service.DeleteApp("dims").ok());
  EXPECT_EQ(service.GetApp("dims"), nullptr);
  EXPECT_TRUE(service.DeleteApp("dims").IsNotFound());
}

}  // namespace
}  // namespace fbstream::laser
