// Distributed chaos harness (the tentpole's acceptance test): a real
// multi-process topology — one scribed broker, one supervisord, two noded
// workers — driven from this process, which is the only input writer and
// the only chaos agent. Rounds of whole-worker SIGKILL, supervisor
// SIGKILL + re-exec (taking every worker down via PDEATHSIG, occasionally
// wiping a node's local state so recovery must restore from the HDFS
// backup, Fig 10), and timed worker<->broker partitions injected through
// the broker's admin RPC. After the storm the cluster must drain, and the
// surviving output must match a golden single-process replay of the
// identical input:
//
//   exactly-once   — every node shard's LSM byte-identical to golden,
//   at-least-once  — terminal "out" a duplicating superset of golden,
//   at-most-once   — terminal "out" a never-duplicating subset of golden.
//
// Round counts come from FBSTREAM_DIST_KILL_ROUNDS (default 25) and
// FBSTREAM_DIST_PARTITION_ROUNDS (default 10) — the defaults are the full
// acceptance soak; scripts/dist_smoke.sh runs a reduced-round pass.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cluster/heartbeat.h"
#include "cluster/supervisor.h"
#include "cluster/workload.h"
#include "common/clock.h"
#include "common/fs.h"
#include "common/serde.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "scribe/remote.h"
#include "scribe/scribe.h"

#ifndef FBSTREAM_SCRIBED_BINARY
#error "FBSTREAM_SCRIBED_BINARY must point at the scribed executable"
#endif
#ifndef FBSTREAM_NODED_BINARY
#error "FBSTREAM_NODED_BINARY must point at the noded executable"
#endif
#ifndef FBSTREAM_SUPERVISORD_BINARY
#error "FBSTREAM_SUPERVISORD_BINARY must point at the supervisord executable"
#endif

namespace fbstream::cluster {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

int EnvRounds(const char* name, int fallback) {
  const char* value = ::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}
int KillRounds() { return EnvRounds("FBSTREAM_DIST_KILL_ROUNDS", 25); }
int PartitionRounds() {
  return EnvRounds("FBSTREAM_DIST_PARTITION_ROUNDS", 10);
}

pid_t Spawn(const std::string& binary, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<std::string> owned = args;
    std::vector<char*> argv;
    std::string path = binary;
    argv.push_back(path.data());
    for (auto& a : owned) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(path.c_str(), argv.data());
    ::_exit(96);
  }
  return pid;
}

// Reads everything currently in one bucket of a category.
std::vector<scribe::Message> ReadAll(scribe::Scribe* bus,
                                     const std::string& category, int bucket) {
  std::vector<scribe::Message> all;
  uint64_t from = 0;
  for (;;) {
    auto chunk = bus->Read(category, bucket, from, 1024);
    if (!chunk.ok() || chunk->empty()) break;
    from = chunk->back().sequence + 1;
    all.insert(all.end(), chunk->begin(), chunk->end());
  }
  return all;
}

// One live cluster: broker + supervisor + two workers, plus the driver-side
// RemoteScribe used for input, partitions, and liveness checks.
class DistCluster {
 public:
  DistCluster(std::string root, WorkloadMode mode)
      : root_(std::move(root)), mode_(mode) {}

  ~DistCluster() {
    // Safety net for failed assertions mid-test: never leak processes.
    if (supervisord_pid_ > 0) {
      ::kill(supervisord_pid_, SIGKILL);
      ::waitpid(supervisord_pid_, nullptr, 0);
    }
    if (scribed_pid_ > 0) {
      ::kill(scribed_pid_, SIGKILL);
      ::waitpid(scribed_pid_, nullptr, 0);
    }
  }

  bool Start() {
    EXPECT_TRUE(CreateDirs(root_ + "/status").ok());
    scribed_pid_ = Spawn(FBSTREAM_SCRIBED_BINARY,
                         {"--root", root_ + "/bus", "--port-file",
                          root_ + "/scribed.port"});
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(10'000);
    while (port_ == 0) {
      if (steady_clock::now() > deadline) {
        ADD_FAILURE() << "scribed never published its port";
        return false;
      }
      auto text = ReadFileToString(root_ + "/scribed.port");
      if (text.ok()) port_ = std::atoi(text->c_str());
      if (port_ == 0) std::this_thread::sleep_for(milliseconds(20));
    }
    driver_ = std::make_unique<scribe::RemoteScribe>(
        SystemClock::Get(), "127.0.0.1", port_, "driver");
    while (!driver_->Ping().ok()) {
      if (steady_clock::now() > deadline) {
        ADD_FAILURE() << "broker never answered the driver";
        return false;
      }
      std::this_thread::sleep_for(milliseconds(20));
    }

    // Deploy: categories on the broker, manifest on shared disk. The
    // manifest is the §4.3 durable topology every worker recovers from.
    EXPECT_TRUE(EnsureWorkloadCategories(driver_.get(), mode_).ok());
    EXPECT_TRUE(stylus::SaveManifest(root_ + "/manifest",
                                     BuildWorkloadManifest(mode_, root_))
                    .ok());
    SpawnSupervisor();
    return WaitAllBeating();
  }

  void SpawnSupervisor() {
    supervisord_pid_ = Spawn(
        FBSTREAM_SUPERVISORD_BINARY,
        {"--broker-port", std::to_string(port_), "--manifest-dir",
         root_ + "/manifest", "--status-dir", root_ + "/status", "--root",
         root_, "--mode", WorkloadModeName(mode_), "--worker-binary",
         FBSTREAM_NODED_BINARY, "--workers", "alpha=alpha,beta=beta",
         "--heartbeat-interval-micros", "20000", "--heartbeat-timeout-micros",
         "400000"});
  }

  std::vector<Supervisor::WorkerStatus> Status() const {
    auto text = ReadFileToString(root_ + "/status/CLUSTER");
    return text.ok() ? Supervisor::ParseStatusFile(*text)
                     : std::vector<Supervisor::WorkerStatus>();
  }

  bool WaitAllBeating(int timeout_ms = 30'000) {
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(timeout_ms);
    while (steady_clock::now() < deadline) {
      const auto rows = Status();
      bool ready = rows.size() == 2;
      for (const auto& r : rows) {
        ready = ready && r.alive && r.seq > 0 &&
                r.state == static_cast<int>(WorkerState::kRunning);
      }
      if (ready) return true;
      std::this_thread::sleep_for(milliseconds(25));
    }
    ADD_FAILURE() << "cluster never became fully live";
    return false;
  }

  void AppendInput(int64_t from, int64_t to) {
    ASSERT_TRUE(AppendWorkloadInput(driver_.get(), from, to).ok());
  }

  // SIGKILLs one worker by name and waits for its successor to beat.
  void KillWorker(const std::string& name) {
    int64_t victim = -1;
    for (const auto& r : Status()) {
      if (r.name == name && r.alive && r.pid > 0) victim = r.pid;
    }
    if (victim <= 0) return;  // Already down this round; still chaos.
    ::kill(static_cast<pid_t>(victim), SIGKILL);
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(30'000);
    while (steady_clock::now() < deadline) {
      for (const auto& r : Status()) {
        if (r.name == name && r.alive && r.pid != victim && r.seq > 0) return;
      }
      std::this_thread::sleep_for(milliseconds(25));
    }
    ADD_FAILURE() << "worker " << name << " never came back";
  }

  // SIGKILLs the supervisor (PDEATHSIG takes every worker down with it —
  // the whole "machine" dies) and re-execs it. With `wipe_node_state`, one
  // node's local LSM directory is deleted while everything is down: the
  // respawned worker must restore that state from its HDFS backup.
  void KillSupervisorAndReexec(bool wipe_node_state,
                               const std::string& wipe_node) {
    ::kill(supervisord_pid_, SIGKILL);
    ::waitpid(supervisord_pid_, nullptr, 0);
    supervisord_pid_ = -1;
    // PDEATHSIG delivery is immediate, but give the kernel a beat to tear
    // the workers down before declaring the machine dead.
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(5'000);
    for (const auto& r : Status()) {
      if (r.pid <= 0) continue;
      while (::kill(static_cast<pid_t>(r.pid), 0) == 0 &&
             steady_clock::now() < deadline) {
        std::this_thread::sleep_for(milliseconds(5));
      }
    }
    if (wipe_node_state) {
      EXPECT_TRUE(RemoveAll(root_ + "/state/" + wipe_node).ok());
    }
    SpawnSupervisor();
    WaitAllBeating();
  }

  // Cuts workers off from the broker for `duration`; the supervisor and
  // driver connections stay healthy. Waits out the partition plus the
  // detector's reaction (timeout, fence, respawn) before returning.
  void PartitionWorkers(const std::string& prefix, Micros duration,
                        scribe::PartitionMode mode) {
    ASSERT_TRUE(driver_->InjectPartition(prefix, duration, mode).ok());
    std::this_thread::sleep_for(
        milliseconds(duration / 1000 + 200));
    WaitAllBeating();
  }

  // Drained: both workers alive, running, zero lag, and still beating —
  // stable across `stable_polls` consecutive reads.
  bool Quiesce(int stable_polls = 10, int timeout_ms = 120'000) {
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(timeout_ms);
    int stable = 0;
    uint64_t last_seq_sum = 0;
    while (steady_clock::now() < deadline) {
      const auto rows = Status();
      bool good = rows.size() == 2;
      uint64_t seq_sum = 0;
      for (const auto& r : rows) {
        good = good && r.alive && r.seq > 0 && r.lag == 0 &&
               r.state == static_cast<int>(WorkerState::kRunning);
        seq_sum += r.seq;
      }
      stable = (good && seq_sum > last_seq_sum) ? stable + 1 : 0;
      last_seq_sum = seq_sum;
      if (stable >= stable_polls) return true;
      std::this_thread::sleep_for(milliseconds(100));
    }
    ADD_FAILURE() << "cluster never quiesced";
    return false;
  }

  // Graceful teardown: workers drain on SIGTERM, then the broker exits.
  // Both processes must exit 0 — a worker that fails its final Stop (lost
  // commits) turns the supervisor's drain into a fence, and the golden
  // comparison would catch the damage anyway; the exit codes just localize
  // the failure.
  void Shutdown() {
    ::kill(supervisord_pid_, SIGTERM);
    int status = 0;
    ASSERT_EQ(::waitpid(supervisord_pid_, &status, 0), supervisord_pid_);
    supervisord_pid_ = -1;
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "supervisord exit status " << status;
    ::kill(scribed_pid_, SIGTERM);
    ASSERT_EQ(::waitpid(scribed_pid_, &status, 0), scribed_pid_);
    scribed_pid_ = -1;
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "scribed exit status " << status;
  }

  uint64_t TotalRestartsFromStatus() const {
    uint64_t total = 0;
    for (const auto& r : Status()) total += r.restarts + r.timeouts;
    return total;
  }

  const std::string& root() const { return root_; }
  scribe::RemoteScribe* driver() { return driver_.get(); }

 private:
  std::string root_;
  WorkloadMode mode_;
  int port_ = 0;
  pid_t scribed_pid_ = -1;
  pid_t supervisord_pid_ = -1;
  std::unique_ptr<scribe::RemoteScribe> driver_;
};

// Runs the full storm against `cluster`; returns the total input count.
int64_t RunStorm(DistCluster* cluster, uint64_t seed) {
  std::mt19937 rng(seed);
  const std::vector<std::string> names = WorkloadNodeNames();
  int64_t next_id = 0;
  cluster->AppendInput(next_id, next_id + 60);
  next_id += 60;

  const int kills = KillRounds();
  for (int round = 0; round < kills; ++round) {
    cluster->AppendInput(next_id, next_id + 20);
    next_id += 20;
    if (round % 8 == 7) {
      // Machine death: supervisor + all workers at once; every third such
      // round also loses one node's local disk (HDFS restore path).
      const bool wipe = round % 24 == 23;
      cluster->KillSupervisorAndReexec(wipe, names[rng() % names.size()]);
    } else {
      cluster->KillWorker(names[rng() % names.size()]);
    }
    if (::testing::Test::HasFatalFailure()) break;
  }

  const int partitions = PartitionRounds();
  for (int round = 0; round < partitions; ++round) {
    cluster->AppendInput(next_id, next_id + 20);
    next_id += 20;
    const Micros duration = 500'000 + (rng() % 400'000);
    const auto mode = (round % 2 == 0) ? scribe::PartitionMode::kBlackhole
                                       : scribe::PartitionMode::kSever;
    // Mostly one worker at a time; sometimes the whole worker tier.
    const std::string prefix =
        (rng() % 10 < 7) ? "worker." + names[rng() % names.size()]
                         : "worker.";
    cluster->PartitionWorkers(prefix, duration, mode);
    if (::testing::Test::HasFatalFailure()) break;
  }

  cluster->AppendInput(next_id, next_id + 40);
  next_id += 40;
  return next_id;
}

// Replays the exact bytes the chaos run ingested ("in", straight off the
// broker's persisted segments) through one clean single-process pipeline
// over a fresh root, and leaves the results for comparison.
class GoldenReplay {
 public:
  GoldenReplay(WorkloadMode mode, const std::string& chaos_bus_root,
               const std::string& golden_root)
      : mode_(mode),
        golden_root_(golden_root),
        chaos_bus_(SystemClock::Get(), chaos_bus_root),
        golden_bus_(SystemClock::Get(), golden_root + "/bus") {
    Run();
  }

  scribe::Scribe* chaos_bus() { return &chaos_bus_; }
  scribe::Scribe* golden_bus() { return &golden_bus_; }
  const std::string& golden_root() const { return golden_root_; }

 private:
  void Run() {
    ASSERT_TRUE(EnsureWorkloadCategories(&chaos_bus_, mode_).ok());
    ASSERT_TRUE(EnsureWorkloadCategories(&golden_bus_, mode_).ok());
    for (int b = 0; b < kWorkloadBuckets; ++b) {
      for (const scribe::Message& m : ReadAll(&chaos_bus_, "in", b)) {
        ASSERT_TRUE(golden_bus_.Write("in", b, m.payload).ok());
      }
    }
    ASSERT_TRUE(stylus::SaveManifest(
                    golden_root_ + "/manifest",
                    BuildWorkloadManifest(mode_, golden_root_))
                    .ok());
    // Mirror the worker runtime exactly: same pipeline options, same
    // continuous-mode lifecycle, so checkpoint bytes are comparable.
    stylus::Pipeline::Options options;
    options.overlap_commits = true;
    options.commit_threads = 2;
    options.idle_sleep_micros = 500;
    options.snapshot_every_batches = 8;
    // The resolver owns the HDFS backup handles the recovered NodeConfigs
    // point into — it must outlive the pipeline's last backup write.
    const auto resolver =
        MakeWorkloadResolver(mode_, &golden_bus_, golden_root_);
    stylus::Pipeline pipeline(&golden_bus_, SystemClock::Get(), options);
    ASSERT_TRUE(
        pipeline.Recover(golden_root_ + "/manifest", resolver).ok());
    ASSERT_TRUE(pipeline.Start().ok());
    auto drained = pipeline.WaitUntilQuiescent(120'000);
    ASSERT_TRUE(drained.ok()) << drained.status();
    ASSERT_TRUE(pipeline.Stop().ok());
  }

  WorkloadMode mode_;
  std::string golden_root_;
  scribe::Scribe chaos_bus_;
  scribe::Scribe golden_bus_;
};

int64_t RunDistChaos(const std::string& dir, WorkloadMode mode,
                     uint64_t seed) {
  DistCluster cluster(dir + "/cluster", mode);
  if (!cluster.Start()) return -1;
  const int64_t inputs = RunStorm(&cluster, seed);
  if (::testing::Test::HasFatalFailure()) return -1;
  if (!cluster.Quiesce()) return -1;
  cluster.Shutdown();
  return inputs;
}

TEST(DistChaosTest, ExactlyOnceByteIdenticalUnderStorm) {
  const std::string dir = MakeTempDir("dist_eo");
  const int64_t inputs = RunDistChaos(dir, WorkloadMode::kExactlyOnce, 11);
  ASSERT_GT(inputs, 0);

  GoldenReplay golden(WorkloadMode::kExactlyOnce, dir + "/cluster/bus",
                      dir + "/golden");
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  int64_t rows_seen = 0;
  for (const std::string& node : WorkloadNodeNames()) {
    for (int b = 0; b < kWorkloadBuckets; ++b) {
      const auto chaos_db =
          DumpWorkloadShardDb(dir + "/cluster", node, b);
      const auto golden_db =
          DumpWorkloadShardDb(golden.golden_root(), node, b);
      ASSERT_FALSE(golden_db.empty()) << node << "/" << b;
      // Byte-identical: output rows AND checkpointed state/offsets all
      // match a run that never saw a single failure.
      EXPECT_EQ(chaos_db, golden_db) << node << "/" << b;
      for (const auto& [key, value] : chaos_db) {
        if (key.rfind("out/", 0) == 0) ++rows_seen;
      }
    }
  }
  // Both nodes emit one row per input.
  EXPECT_EQ(rows_seen, 2 * inputs);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(DistChaosTest, AtLeastOnceNeverLosesOutputUnderStorm) {
  const std::string dir = MakeTempDir("dist_alo");
  const int64_t inputs = RunDistChaos(dir, WorkloadMode::kAtLeastOnce, 22);
  ASSERT_GT(inputs, 0);

  GoldenReplay golden(WorkloadMode::kAtLeastOnce, dir + "/cluster/bus",
                      dir + "/golden");
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  auto chaos_out = ReadWorkloadOutput(golden.chaos_bus());
  auto golden_out = ReadWorkloadOutput(golden.golden_bus());
  ASSERT_TRUE(chaos_out.ok());
  ASSERT_TRUE(golden_out.ok());
  EXPECT_EQ(static_cast<int64_t>(golden_out->size()), inputs);
  for (const auto& [id, count] : *golden_out) {
    const auto it = chaos_out->find(id);
    ASSERT_NE(it, chaos_out->end()) << "lost id " << id;
    EXPECT_GE(it->second, count);
  }
  EXPECT_EQ(chaos_out->size(), golden_out->size());  // No invented ids.
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(DistChaosTest, AtMostOnceNeverDuplicatesOutputUnderStorm) {
  const std::string dir = MakeTempDir("dist_amo");
  const int64_t inputs = RunDistChaos(dir, WorkloadMode::kAtMostOnce, 33);
  ASSERT_GT(inputs, 0);

  GoldenReplay golden(WorkloadMode::kAtMostOnce, dir + "/cluster/bus",
                      dir + "/golden");
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  auto chaos_out = ReadWorkloadOutput(golden.chaos_bus());
  auto golden_out = ReadWorkloadOutput(golden.golden_bus());
  ASSERT_TRUE(chaos_out.ok());
  ASSERT_TRUE(golden_out.ok());
  EXPECT_EQ(static_cast<int64_t>(golden_out->size()), inputs);
  bool duplicates = false;
  for (const auto& [id, count] : *chaos_out) {
    EXPECT_EQ(count, 1) << "duplicated id " << id;
    duplicates = duplicates || count != 1;
    EXPECT_TRUE(golden_out->count(id) > 0) << "unknown id " << id;
  }
  if (duplicates) {
    // Forensics: bus position of every copy of every duplicated id, so a
    // failure log shows whether copies are adjacent (transport double-land)
    // or an interval apart (checkpoint replay).
    TextRowCodec codec(WorkloadEventSchema());
    scribe::Scribe* bus = golden.chaos_bus();
    for (int b = 0; b < bus->NumBuckets("out"); ++b) {
      auto messages = bus->Read("out", b, 0, 1u << 20);
      ASSERT_TRUE(messages.ok());
      for (const scribe::Message& m : *messages) {
        auto row = codec.Decode(m.payload);
        ASSERT_TRUE(row.ok());
        const int64_t id = row->Get("id").CoerceInt64();
        if (chaos_out->at(id) != 1) {
          fprintf(stderr, "dup id %lld: out bucket %d seq %llu\n",
                  static_cast<long long>(id), b,
                  static_cast<unsigned long long>(m.sequence));
        }
      }
    }
  }
  EXPECT_LE(chaos_out->size(), golden_out->size());
  if (::testing::Test::HasFailure()) {
    fprintf(stderr, "preserving failure evidence in %s\n", dir.c_str());
    return;
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// A storm-free control: the failure detector must not fire on a healthy
// cluster (no heartbeat false positives while real work flows).
TEST(DistChaosTest, CleanRunHasNoFalsePositives) {
  const std::string dir = MakeTempDir("dist_clean");
  DistCluster cluster(dir + "/cluster", WorkloadMode::kExactlyOnce);
  ASSERT_TRUE(cluster.Start());
  for (int i = 0; i < 5; ++i) {
    cluster.AppendInput(i * 100, (i + 1) * 100);
    std::this_thread::sleep_for(milliseconds(300));
  }
  ASSERT_TRUE(cluster.Quiesce());
  EXPECT_EQ(cluster.TotalRestartsFromStatus(), 0u);
  cluster.Shutdown();
  EXPECT_EQ(cluster.TotalRestartsFromStatus(), 0u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// ---------------------------------------------------------------------------
// Partial-manifest recovery (satellite #3), in-process: two pipelines each
// recover a node_filter slice of one shared manifest, process the same bus,
// and together converge to the same bytes as one pipeline recovering the
// full topology.

TEST(PartialRecoverTest, FilteredSlicesConvergeToFullRecovery) {
  const std::string dir = MakeTempDir("partial_recover");
  const WorkloadMode mode = WorkloadMode::kExactlyOnce;

  stylus::Pipeline::Options options;
  options.overlap_commits = true;
  options.commit_threads = 2;
  options.idle_sleep_micros = 500;
  options.snapshot_every_batches = 8;

  auto run = [&](const std::string& root,
                 const std::vector<std::vector<std::string>>& slices) {
    scribe::Scribe bus(SystemClock::Get(), root + "/bus");
    ASSERT_TRUE(EnsureWorkloadCategories(&bus, mode).ok());
    ASSERT_TRUE(AppendWorkloadInput(&bus, 0, 200).ok());
    ASSERT_TRUE(stylus::SaveManifest(root + "/manifest",
                                     BuildWorkloadManifest(mode, root))
                    .ok());
    // One pipeline per slice, all over the same manifest and bus — the
    // worker-process topology without the processes. Resolvers are
    // declared first: they own the HDFS handles the pipelines' backup
    // threads write through, so they must be destroyed last.
    std::vector<stylus::Pipeline::NodeConfigResolver> resolvers;
    std::vector<std::unique_ptr<stylus::Pipeline>> pipelines;
    for (const auto& slice : slices) {
      auto p = std::make_unique<stylus::Pipeline>(&bus, SystemClock::Get(),
                                                  options);
      stylus::Pipeline::RecoverOptions recover;
      recover.node_filter = slice;
      resolvers.push_back(MakeWorkloadResolver(mode, &bus, root));
      ASSERT_TRUE(
          p->Recover(root + "/manifest", resolvers.back(), recover).ok());
      ASSERT_TRUE(p->Start().ok());
      pipelines.push_back(std::move(p));
    }
    for (auto& p : pipelines) {
      auto drained = p->WaitUntilQuiescent(60'000);
      ASSERT_TRUE(drained.ok()) << drained.status();
    }
    for (auto& p : pipelines) ASSERT_TRUE(p->Stop().ok());
  };

  run(dir + "/split", {{"alpha"}, {"beta"}});
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  run(dir + "/full", {{}});  // Empty filter = the whole manifest.
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  for (const std::string& node : WorkloadNodeNames()) {
    for (int b = 0; b < kWorkloadBuckets; ++b) {
      const auto split_db = DumpWorkloadShardDb(dir + "/split", node, b);
      const auto full_db = DumpWorkloadShardDb(dir + "/full", node, b);
      ASSERT_FALSE(full_db.empty()) << node << "/" << b;
      EXPECT_EQ(split_db, full_db) << node << "/" << b;
    }
  }

  // A slice must not rewrite the shared manifest as if it owned the whole
  // topology: the full node list survives partial recoveries.
  auto manifest = stylus::LoadManifest(dir + "/split/manifest");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->nodes.size(), WorkloadNodeNames().size());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::cluster
