// Concurrency tests for the LSM store: WAL group commit, multi-threaded
// Get/Put/Flush/CompactAll torture, snapshot consistency across concurrent
// maintenance, iterator pinning, and background fault injection. Built and
// run under ThreadSanitizer by scripts/tsan.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "storage/lsm/db.h"
#include "storage/lsm/wal.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {
namespace {

struct ReplayedRecord {
  SequenceNumber first_sequence;
  std::vector<WriteBatch::Op> ops;
};

std::vector<ReplayedRecord> Replay(const std::string& path) {
  std::vector<ReplayedRecord> out;
  const Status st =
      ReplayWal(path, [&out](SequenceNumber first, const WriteBatch& batch) {
        out.push_back(ReplayedRecord{first, batch.ops()});
      });
  EXPECT_TRUE(st.ok()) << st;
  return out;
}

TEST(WalGroupCommitTest, GroupedAppendMatchesSerialAppendsByteForByte) {
  const std::string dir = MakeTempDir("walgc");
  WriteBatch b1;
  b1.Put("a", "1");
  WriteBatch b2;
  b2.Delete("b");
  b2.Merge("c", "+2");
  WriteBatch b3;
  b3.Put("d", "4");

  {
    WalWriter serial;
    ASSERT_TRUE(serial.Open(dir + "/serial.log").ok());
    ASSERT_TRUE(serial.AddRecord(1, b1).ok());
    ASSERT_TRUE(serial.AddRecord(2, b2).ok());
    ASSERT_TRUE(serial.AddRecord(4, b3).ok());
  }
  {
    WalWriter grouped;
    ASSERT_TRUE(grouped.Open(dir + "/grouped.log").ok());
    ASSERT_TRUE(grouped.AddRecords({{1, &b1}, {2, &b2}, {4, &b3}}).ok());
  }

  auto serial_bytes = ReadFileToString(dir + "/serial.log");
  auto grouped_bytes = ReadFileToString(dir + "/grouped.log");
  ASSERT_TRUE(serial_bytes.ok());
  ASSERT_TRUE(grouped_bytes.ok());
  // One fwrite+fflush for the group, but the on-disk framing is identical,
  // so crash replay cannot tell group commits from serial ones.
  EXPECT_EQ(serial_bytes.value(), grouped_bytes.value());

  const auto records = Replay(dir + "/grouped.log");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first_sequence, 1u);
  EXPECT_EQ(records[1].first_sequence, 2u);
  ASSERT_EQ(records[1].ops.size(), 2u);
  EXPECT_EQ(records[1].ops[1].value, "+2");
  EXPECT_EQ(records[2].first_sequence, 4u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(WalGroupCommitTest, TornGroupReplaysIntactPrefix) {
  const std::string dir = MakeTempDir("walgc");
  const std::string path = dir + "/wal.log";
  WriteBatch b1;
  b1.Put("k1", "v1");
  WriteBatch b2;
  b2.Put("k2", "v2");
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.AddRecords({{1, &b1}, {2, &b2}}).ok());
  }
  // Tear off the tail of the second record, as a crash mid-write would.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path, data.value().substr(0, data.value().size() - 3))
          .ok());

  const auto records = Replay(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first_sequence, 1u);
  ASSERT_EQ(records[0].ops.size(), 1u);
  EXPECT_EQ(records[0].ops[0].key, "k1");
  ASSERT_TRUE(RemoveAll(dir).ok());
}

class LsmConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("lsmconc"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string dir_;
};

TEST_F(LsmConcurrencyTest, ConcurrentWritersAllDurableAfterReopen) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  {
    DbOptions options;
    options.memtable_bytes = 1u << 20;  // No flush: durability is WAL-only.
    auto db_or = Db::Open(options, dir_);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(db_or).value();

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, &failures, t] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string key =
              "t" + std::to_string(t) + "-" + std::to_string(i);
          if (!db->Put(key, "v" + std::to_string(i)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
  }
  // Every acknowledged write must survive reopen through the (group
  // committed) WAL alone.
  auto db_or = Db::Open({}, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      auto v = db->Get(key);
      ASSERT_TRUE(v.ok()) << key << ": " << v.status();
      EXPECT_EQ(v.value(), "v" + std::to_string(i));
    }
  }
}

// The heart of the suite: concurrent readers, writers, scans, and forced
// maintenance against a tiny memtable so flush/compaction churn constantly.
// Writers stamp values with their key and a monotonically increasing
// counter; readers assert integrity (value matches key) and monotonicity
// (a later read never observes an older counter than an earlier one).
TEST_F(LsmConcurrencyTest, TortureGetPutFlushCompactAll) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kKeysPerWriter = 40;
  constexpr int kOpsPerWriter = 1500;

  DbOptions options;
  options.memtable_bytes = 8u << 10;  // Constant flushing.
  options.l0_compaction_trigger = 2;
  auto db_or = Db::Open(options, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  auto key_of = [](int writer, int k) {
    return "w" + std::to_string(writer) + "-k" + std::to_string(k);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = key_of(w, i % kKeysPerWriter);
        const std::string value = key + "#" + std::to_string(i);
        if (!db->Put(key, value).ok()) errors.fetch_add(1);
        if (i % 97 == 0 && !db->Delete(key_of(w, (i + 7) % kKeysPerWriter)).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(1234u + static_cast<uint64_t>(r));
      std::vector<int> last_seen(kWriters * kKeysPerWriter, -1);
      while (!done.load(std::memory_order_acquire)) {
        const int w = static_cast<int>(rng.Uniform(kWriters));
        const int k = static_cast<int>(rng.Uniform(kKeysPerWriter));
        const std::string key = key_of(w, k);
        auto v = db->Get(key);
        if (!v.ok()) continue;  // NotFound (deleted) is fine.
        // Integrity: the value belongs to this key.
        if (v.value().rfind(key + "#", 0) != 0) {
          errors.fetch_add(1);
          continue;
        }
        // Monotonicity: visible_sequence only grows, so a re-read must not
        // travel backwards in time.
        const int counter = std::stoi(v.value().substr(key.size() + 1));
        int& last = last_seen[static_cast<size_t>(w * kKeysPerWriter + k)];
        if (counter < last) errors.fetch_add(1);
        last = counter;
      }
    });
  }
  // Forced maintenance racing the organic flush/compaction cycle.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (!db->Flush().ok()) errors.fetch_add(1);
      if (!db->CompactAll().ok()) errors.fetch_add(1);
      std::this_thread::yield();
    }
  });
  // A scanning thread: every pass must observe strictly sorted keys and
  // well-formed values.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::string prev;
      for (auto it = db->NewIterator(); it.Valid(); it.Next()) {
        if (!prev.empty() && it.key() <= prev) errors.fetch_add(1);
        if (it.value().rfind(it.key() + "#", 0) != 0) errors.fetch_add(1);
        prev = it.key();
      }
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(errors.load(), 0);

  const Db::Stats stats = db->GetStats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.compactions, 0u);

  // Every key holds its last written value (or was deleted last).
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string key = key_of(w, k);
      auto v = db->Get(key);
      if (v.ok()) {
        EXPECT_EQ(v.value().rfind(key + "#", 0), 0u) << key;
      } else {
        EXPECT_TRUE(v.status().IsNotFound()) << v.status();
      }
    }
  }
}

TEST_F(LsmConcurrencyTest, SnapshotStaysConsistentAcrossConcurrentMaintenance) {
  constexpr int kKeys = 100;
  DbOptions options;
  options.memtable_bytes = 8u << 10;
  options.l0_compaction_trigger = 2;
  auto db_or = Db::Open(options, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();

  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "A").ok());
  }
  const DbSnapshot* snapshot = db->GetSnapshot();

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::thread churn([&] {
    // Overwrite everything repeatedly and force flushes + compactions: the
    // pinned snapshot must keep resolving to the old values throughout.
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < kKeys; ++i) {
        if (!db->Put("key" + std::to_string(i), "B" + std::to_string(round))
                 .ok()) {
          errors.fetch_add(1);
        }
      }
      if (!db->Flush().ok()) errors.fetch_add(1);
      if (!db->CompactAll().ok()) errors.fetch_add(1);
    }
    done.store(true, std::memory_order_release);
  });

  Rng rng(99);
  while (!done.load(std::memory_order_acquire)) {
    const std::string key = "key" + std::to_string(rng.Uniform(kKeys));
    auto v = db->Get(key, snapshot);
    if (!v.ok() || v.value() != "A") errors.fetch_add(1);
  }
  churn.join();
  EXPECT_EQ(errors.load(), 0);

  // After release, fresh reads see the churn's final values.
  db->ReleaseSnapshot(snapshot);
  auto v = db->Get("key0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "B4");
}

TEST_F(LsmConcurrencyTest, IteratorPinsItsViewWhileWritesContinue) {
  auto db_or = Db::Open({}, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Put("stable" + std::to_string(i), "x").ok());
  }

  Db::Iterator it = db->NewIterator();
  std::thread writer([&db] {
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(db->Put("zz-new" + std::to_string(i), "y").ok());
    }
  });
  // The iterator was created before the writer's inserts became visible;
  // its sequence gate must hide all of them.
  size_t count = 0;
  for (; it.Valid(); it.Next()) {
    EXPECT_EQ(it.key().rfind("stable", 0), 0u) << it.key();
    ++count;
  }
  EXPECT_EQ(count, 50u);
  writer.join();
}

class LsmFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global()->Reset();
    dir_ = MakeTempDir("lsmfault");
  }
  void TearDown() override {
    FaultRegistry::Global()->Reset();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string dir_;
};

TEST_F(LsmFaultTest, FlushFaultIsStickyAndDataRecoversOnReopen) {
  {
    auto db_or = Db::Open({}, dir_);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(db_or).value();
    ASSERT_TRUE(db->Put("k", "v").ok());

    FaultRegistry::Global()->FailNext("lsm.flush");
    const Status st = db->Flush();
    EXPECT_FALSE(st.ok()) << "injected flush fault must surface";
    EXPECT_EQ(FaultRegistry::Global()->Fires("lsm.flush"), 1u);
    // The background error is sticky: maintenance is halted and later
    // forced maintenance reports the same failure.
    EXPECT_FALSE(db->CompactAll().ok());
    // Reads still serve out of the retained memtable.
    auto v = db->Get("k");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), "v");
  }
  FaultRegistry::Global()->Reset();
  // The unflushed memtable was WAL-covered; reopen recovers it and a clean
  // flush now succeeds.
  auto db_or = Db::Open({}, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();
  auto v = db->Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "v");
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->GetStats().l0_files, 1);
}

TEST_F(LsmFaultTest, CompactionFaultSurfacesAndInputsSurvive) {
  DbOptions options;
  options.l0_compaction_trigger = 100;  // Only CompactAll compacts.
  {
    auto db_or = Db::Open(options, dir_);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(db_or).value();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
      if (i % 5 == 4) {
        ASSERT_TRUE(db->Flush().ok());
      }
    }
    FaultRegistry::Global()->FailNext("lsm.compaction");
    EXPECT_FALSE(db->CompactAll().ok());
    EXPECT_EQ(FaultRegistry::Global()->Fires("lsm.compaction"), 1u);
  }
  FaultRegistry::Global()->Reset();
  // Inputs were never deleted; reopen serves everything and can compact.
  auto db_or = Db::Open(options, dir_);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();
  for (int i = 0; i < 20; ++i) {
    auto v = db->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(v.value(), "v" + std::to_string(i));
  }
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->GetStats().l0_files, 0);
  EXPECT_GT(db->GetStats().compactions, 0u);
}

}  // namespace
}  // namespace fbstream::lsm
