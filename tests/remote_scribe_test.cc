// Socket Scribe transport tests: wire framing, local/remote parity,
// idempotent-append dedup, transient-vs-permanent error classification,
// injected partitions, and reconnect-with-backoff.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/hash.h"
#include "common/serde.h"
#include "scribe/remote.h"
#include "scribe/scribe.h"

namespace fbstream::scribe {
namespace {

// ---------------------------------------------------------------------------
// Raw-socket helpers: hand-crafted frames for the tests that must speak the
// protocol without the client's conveniences (dedup replay, corruption).

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

// Parses "opcode + status code" off a response body.
uint64_t ResponseCode(const std::string& body) {
  std::string_view src(body);
  src.remove_prefix(1);  // opcode echo
  uint64_t code = 0;
  EXPECT_TRUE(GetVarint64(&src, &code));
  return code;
}

std::string HelloBody(const std::string& name) {
  std::string body;
  body.push_back(static_cast<char>(RemoteOp::kHello));
  PutLengthPrefixed(&body, name);
  return body;
}

std::string WriteBody(const std::string& category, int bucket,
                      const std::string& payload, uint64_t guid,
                      uint64_t token) {
  std::string body;
  body.push_back(static_cast<char>(RemoteOp::kWrite));
  PutLengthPrefixed(&body, category);
  std::string route;
  PutVarint64(&route, static_cast<uint64_t>(bucket));
  PutLengthPrefixed(&body, route);
  PutLengthPrefixed(&body, payload);
  PutFixed64(&body, guid);
  PutVarint64(&body, token);
  return body;
}

// A scripted fake broker for client-side classification tests: accepts one
// connection, answers the Hello, then runs `script` on the next request.
class FakeBroker {
 public:
  enum class Behavior {
    kGarbageChecksum,  // Valid length, wrong checksum.
    kWrongOpcode,      // Well-formed frame echoing the wrong opcode.
    kSilence,          // Never respond (client's SO_RCVTIMEO fires).
    kCloseConnection,  // Close immediately after reading the request.
  };

  explicit FakeBroker(Behavior behavior) : behavior_(behavior) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 4), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeBroker() {
    // shutdown(), not just close(): close() does not wake a thread blocked
    // in accept() on the same socket.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  int port() const { return port_; }

 private:
  void Serve() {
    // Serve connections until the listener closes: the client under test
    // may reconnect after we misbehave.
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      auto hello = ReadFrameFromFd(fd);
      if (hello.ok()) {
        std::string reply;
        reply.push_back(static_cast<char>(RemoteOp::kHello));
        PutVarint64(&reply, 0);
        PutLengthPrefixed(&reply, "");
        (void)WriteFrameToFd(fd, reply);
        auto request = ReadFrameFromFd(fd);
        if (request.ok()) Misbehave(fd, request.value());
      }
      ::close(fd);
    }
  }

  void Misbehave(int fd, const std::string& request) {
    switch (behavior_) {
      case Behavior::kGarbageChecksum: {
        const std::string body = "garbage-body";
        std::string frame;
        uint32_t len = static_cast<uint32_t>(body.size());
        frame.append(reinterpret_cast<const char*>(&len), 4);
        uint64_t bad_checksum = Fnv1a64(body) ^ 0xdeadbeef;
        frame.append(reinterpret_cast<const char*>(&bad_checksum), 8);
        frame.append(body);
        ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        break;
      }
      case Behavior::kWrongOpcode: {
        std::string reply;
        reply.push_back(static_cast<char>(RemoteOp::kPing));
        PutVarint64(&reply, 0);
        PutLengthPrefixed(&reply, "");
        if (!request.empty() &&
            request[0] == static_cast<char>(RemoteOp::kPing)) {
          // Make sure it's actually *wrong* for the request at hand.
          reply[0] = static_cast<char>(RemoteOp::kWrite);
        }
        (void)WriteFrameToFd(fd, reply);
        break;
      }
      case Behavior::kSilence: {
        // Park until the peer hangs up.
        char c;
        while (::recv(fd, &c, 1, 0) > 0) {
        }
        break;
      }
      case Behavior::kCloseConnection:
        break;
    }
  }

  Behavior behavior_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

RemoteScribeOptions FailFastOptions() {
  RemoteScribeOptions options;
  options.connect_timeout_micros = 300'000;
  options.rpc_timeout_micros = 150'000;
  options.retry = {.max_attempts = 2,
                   .initial_backoff_micros = 1'000,
                   .max_backoff_micros = 10'000};
  return options;
}

// ---------------------------------------------------------------------------
// Framing.

TEST(RemoteFramingTest, RoundTripThroughSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrameToFd(fds[0], "hello frame").ok());
  auto body = ReadFrameFromFd(fds[1]);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(body.value(), "hello frame");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RemoteFramingTest, ChecksumMismatchIsCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string frame = EncodeFrame("payload");
  frame[6] ^= 0x1;  // Flip a checksum bit.
  ASSERT_EQ(::send(fds[0], frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  auto body = ReadFrameFromFd(fds[1]);
  EXPECT_EQ(body.status().code(), StatusCode::kCorruption);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RemoteFramingTest, OversizeLengthIsCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  char header[12] = {0};
  const uint32_t huge = kMaxFrameBytes + 1;
  memcpy(header, &huge, 4);
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0), 12);
  auto body = ReadFrameFromFd(fds[1]);
  EXPECT_EQ(body.status().code(), StatusCode::kCorruption);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RemoteFramingTest, PeerCloseIsRetryableUnavailable) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  auto body = ReadFrameFromFd(fds[1]);
  EXPECT_EQ(body.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(body.status().IsRetryable());
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Local/remote parity: every Scribe operation behaves identically through
// the socket.

class RemoteScribeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global()->Reset();
    clock_.SetMicros(1'000'000);
    local_ = std::make_unique<Scribe>(&clock_);
    server_ = std::make_unique<ScribeServer>(local_.get());
    ASSERT_TRUE(server_->Start().ok());
    remote_ = std::make_unique<RemoteScribe>(&clock_, "127.0.0.1",
                                             server_->port(), "test.client",
                                             FailFastOptions());
  }

  void TearDown() override {
    remote_.reset();
    server_->Stop();
    FaultRegistry::Global()->Reset();
  }

  SimClock clock_;
  std::unique_ptr<Scribe> local_;
  std::unique_ptr<ScribeServer> server_;
  std::unique_ptr<RemoteScribe> remote_;
};

TEST_F(RemoteScribeTest, FullApiParity) {
  CategoryConfig config;
  config.name = "events";
  config.num_buckets = 4;
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  EXPECT_TRUE(remote_->HasCategory("events"));
  EXPECT_FALSE(remote_->HasCategory("nope"));
  EXPECT_EQ(remote_->NumBuckets("events"), 4);
  EXPECT_EQ(remote_->NumBuckets("nope"), 0);

  auto got = remote_->GetConfig("events");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->name, "events");
  EXPECT_EQ(got->num_buckets, 4);
  EXPECT_EQ(got->retention_micros, config.retention_micros);

  ASSERT_TRUE(remote_->Write("events", 1, "m0").ok());
  ASSERT_TRUE(remote_->Write("events", 1, "m1").ok());
  ASSERT_TRUE(remote_->WriteSharded("events", "key", "m2").ok());
  EXPECT_EQ(remote_->Write("nope", 0, "x").code(), StatusCode::kNotFound);

  // Both views are the same bus.
  auto local_read = local_->Read("events", 1, 0, 100);
  auto remote_read = remote_->Read("events", 1, 0, 100);
  ASSERT_TRUE(local_read.ok());
  ASSERT_TRUE(remote_read.ok());
  ASSERT_EQ(remote_read->size(), local_read->size());
  ASSERT_GE(remote_read->size(), 2u);
  EXPECT_EQ((*remote_read)[0].payload, "m0");
  EXPECT_EQ((*remote_read)[0].sequence, (*local_read)[0].sequence);
  EXPECT_EQ((*remote_read)[1].payload, "m1");

  auto next = remote_->NextSequence("events", 1);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, local_->NextSequence("events", 1).value());

  auto bytes = remote_->TotalBytes("events");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, local_->TotalBytes("events").value());

  ASSERT_TRUE(remote_->SetNumBuckets("events", 6).ok());
  EXPECT_EQ(local_->NumBuckets("events"), 6);

  remote_->TrimExpired();  // Smoke: must not throw or wedge the connection.
  EXPECT_TRUE(remote_->Ping().ok());
}

TEST_F(RemoteScribeTest, TailerWorksOverRemote) {
  CategoryConfig config;
  config.name = "t";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(remote_->Write("t", 0, "m" + std::to_string(i)).ok());
  }
  Tailer tailer(remote_.get(), "t", 0);
  auto first = tailer.Poll(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[2].payload, "m2");
  EXPECT_EQ(tailer.LagMessages(), 2u);
  auto rest = tailer.Poll();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[1].payload, "m4");
  EXPECT_EQ(tailer.LagMessages(), 0u);
}

TEST_F(RemoteScribeTest, DuplicateAppendTokenIsDeduped) {
  CategoryConfig config;
  config.name = "dedup";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());

  const int fd = ConnectTo(server_->port());
  ASSERT_TRUE(WriteFrameToFd(fd, HelloBody("raw.client")).ok());
  auto hello_reply = ReadFrameFromFd(fd);
  ASSERT_TRUE(hello_reply.ok());
  ASSERT_EQ(ResponseCode(hello_reply.value()), 0u);

  // The same (guid, token) append delivered twice — a retry whose first
  // ack was lost. Both must ack OK; only one message may land.
  const std::string body = WriteBody("dedup", 0, "once", /*guid=*/77,
                                     /*token=*/5);
  for (int attempt = 0; attempt < 2; ++attempt) {
    ASSERT_TRUE(WriteFrameToFd(fd, body).ok());
    auto reply = ReadFrameFromFd(fd);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(ResponseCode(reply.value()), 0u);
  }
  // A *newer* token from the same guid still lands.
  ASSERT_TRUE(
      WriteFrameToFd(fd, WriteBody("dedup", 0, "twice", 77, 6)).ok());
  auto reply = ReadFrameFromFd(fd);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ResponseCode(reply.value()), 0u);
  ::close(fd);

  auto messages = local_->Read("dedup", 0, 0, 100);
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages->size(), 2u);
  EXPECT_EQ((*messages)[0].payload, "once");
  EXPECT_EQ((*messages)[1].payload, "twice");
}

TEST(RemoteScribeDedupTest, ActiveClientSurvivesDedupTableEviction) {
  // The dedup table must evict per-guid (least recently active), never
  // wholesale: wiping an active client's entry lets its in-flight retry
  // double-land. Cap the table at 2 and churn it with one-shot guids while
  // one long-lived client keeps retrying the same token.
  SimClock clock;
  clock.SetMicros(1'000'000);
  Scribe local(&clock);
  ScribeServerOptions options;
  options.max_dedup_clients = 2;
  ScribeServer server(&local, options);
  ASSERT_TRUE(server.Start().ok());
  CategoryConfig config;
  config.name = "evict";
  ASSERT_TRUE(local.CreateCategory(config).ok());

  const int fd = ConnectTo(server.port());
  ASSERT_TRUE(WriteFrameToFd(fd, HelloBody("steady.client")).ok());
  auto hello_reply = ReadFrameFromFd(fd);
  ASSERT_TRUE(hello_reply.ok());
  ASSERT_EQ(ResponseCode(hello_reply.value()), 0u);

  auto append = [&](uint64_t guid, uint64_t token,
                    const std::string& payload) {
    ASSERT_TRUE(
        WriteFrameToFd(fd, WriteBody("evict", 0, payload, guid, token)).ok());
    auto reply = ReadFrameFromFd(fd);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(ResponseCode(reply.value()), 0u);
  };

  append(/*guid=*/1, /*token=*/1, "steady");
  // Churn well past the cap with single-append guids; the steady client's
  // retry between rounds keeps its entry fresh, so the churners evict each
  // other instead.
  for (uint64_t g = 100; g < 110; ++g) {
    append(g, 1, "churn");
    append(1, 1, "steady-retry");  // Lost-ack retry: must keep deduping.
  }
  ::close(fd);
  server.Stop();

  auto messages = local.Read("evict", 0, 0, 100);
  ASSERT_TRUE(messages.ok());
  int steady_copies = 0;
  for (const auto& m : *messages) {
    if (m.payload.rfind("steady", 0) == 0) ++steady_copies;
  }
  EXPECT_EQ(steady_copies, 1) << "an evicted active client double-landed";
  EXPECT_EQ(messages->size(), 11u);  // 1 steady + 10 churn.
}

TEST(RemoteScribeDedupTest, ConcurrentDuplicateAppendsLandOnce) {
  // The dedup check, the append, and recording the token must be atomic
  // per guid: a retry racing its own slow in-flight original (client RPC
  // timed out mid-apply, reconnected, resent) must wait for the original
  // and ack as a duplicate, not re-append. Two connections deliver the
  // same (guid, token) as simultaneously as a barrier can arrange, every
  // round.
  SimClock clock(1'000'000);
  Scribe local(&clock);
  ScribeServer server(&local);
  ASSERT_TRUE(server.Start().ok());
  CategoryConfig config;
  config.name = "race";
  ASSERT_TRUE(local.CreateCategory(config).ok());

  constexpr int kRounds = 50;
  constexpr uint64_t kGuid = 9;
  std::atomic<int> at_barrier{0};
  auto run = [&](const char* name) {
    const int fd = ConnectTo(server.port());
    ASSERT_TRUE(WriteFrameToFd(fd, HelloBody(name)).ok());
    auto hello = ReadFrameFromFd(fd);
    ASSERT_TRUE(hello.ok());
    for (int t = 1; t <= kRounds; ++t) {
      at_barrier.fetch_add(1);
      while (at_barrier.load() < 2 * t) std::this_thread::yield();
      ASSERT_TRUE(
          WriteFrameToFd(fd, WriteBody("race", 0, "m" + std::to_string(t),
                                       kGuid, static_cast<uint64_t>(t)))
              .ok());
      auto reply = ReadFrameFromFd(fd);
      ASSERT_TRUE(reply.ok());
      // Both the original and the duplicate must be acked OK.
      ASSERT_EQ(ResponseCode(reply.value()), 0u);
    }
    ::close(fd);
  };
  std::thread a([&] { run("race.a"); });
  std::thread b([&] { run("race.b"); });
  a.join();
  b.join();
  server.Stop();

  auto messages = local.Read("race", 0, 0, 1000);
  ASSERT_TRUE(messages.ok());
  EXPECT_EQ(messages->size(), static_cast<size_t>(kRounds))
      << "a concurrent duplicate re-appended";
}

TEST(RemoteReadChunkTest, ReadResponsesChunkByBytes) {
  // Read responses are chunked by encoded byte size, not just message
  // count: with the per-RPC byte budget shrunk to a couple of messages,
  // each RPC returns a bounded chunk and resuming from the next sequence
  // drains everything without loss or a stuck tailer.
  SimClock clock(1'000'000);
  Scribe local(&clock);
  ScribeServerOptions options;
  options.max_read_bytes = 256;
  ScribeServer server(&local, options);
  ASSERT_TRUE(server.Start().ok());
  CategoryConfig config;
  config.name = "big";
  ASSERT_TRUE(local.CreateCategory(config).ok());
  const std::string payload(100, 'x');
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(local.Write("big", 0, payload + std::to_string(i)).ok());
  }

  RemoteScribe remote(&clock, "127.0.0.1", server.port(), "reader",
                      FailFastOptions());
  auto first = remote.Read("big", 0, 0, 100);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GE(first->size(), 1u);
  EXPECT_LT(first->size(), 9u) << "byte budget was not applied";
  std::vector<Message> all = *first;
  while (all.size() < 9) {
    const size_t before = all.size();
    auto next = remote.Read("big", 0, all.back().sequence + 1, 100);
    ASSERT_TRUE(next.ok()) << next.status();
    ASSERT_FALSE(next->empty()) << "chunked read stopped making progress";
    all.insert(all.end(), next->begin(), next->end());
    ASSERT_GT(all.size(), before);
  }
  ASSERT_EQ(all.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(all[i].payload, payload + std::to_string(i));
  }

  // A single message larger than the budget still goes out — alone.
  ASSERT_TRUE(local.Write("big", 0, std::string(400, 'y')).ok());
  auto oversize = remote.Read("big", 0, all.back().sequence + 1, 100);
  ASSERT_TRUE(oversize.ok()) << oversize.status();
  ASSERT_EQ(oversize->size(), 1u);
  EXPECT_EQ((*oversize)[0].payload, std::string(400, 'y'));
  server.Stop();
}

TEST(ScribeServerTest, StopIsSafeForConcurrentCallers) {
  // Stop() from several threads at once: exactly one runs the shutdown,
  // the rest block until it completes (join from two threads is UB, and an
  // early return would hand back a server with live connection threads).
  SimClock clock(1'000'000);
  Scribe local(&clock);
  ScribeServer server(&local);
  ASSERT_TRUE(server.Start().ok());
  RemoteScribe remote(&clock, "127.0.0.1", server.port(), "stopper",
                      FailFastOptions());
  ASSERT_TRUE(remote.Ping().ok());  // A live connection to tear down.

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { server.Stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(remote.Ping().ok());
}

TEST_F(RemoteScribeTest, SeverPartitionHealsAndReconnects) {
  CategoryConfig config;
  config.name = "p";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  ASSERT_TRUE(remote_->Write("p", 0, "before").ok());

  // Sever this client for 300ms of steady time. The first write inside the
  // window fails (retry ladder exhausts against handshake severs)...
  server_->Partition("test.client", 300'000, PartitionMode::kSever);
  Status inside = remote_->Write("p", 0, "during");
  EXPECT_FALSE(inside.ok());
  EXPECT_TRUE(inside.IsRetryable()) << inside;

  // ...and after the deadline the client reconnects transparently.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  Status after;
  for (int i = 0; i < 20; ++i) {
    after = remote_->Write("p", 0, "after");
    if (after.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(after.ok()) << after;
  EXPECT_GE(remote_->reconnects(), 1u);

  // The failed "during" append never half-landed.
  auto messages = local_->Read("p", 0, 0, 100);
  ASSERT_TRUE(messages.ok());
  std::vector<std::string> payloads;
  for (const auto& m : *messages) payloads.push_back(m.payload);
  EXPECT_EQ(payloads, (std::vector<std::string>{"before", "after"}));
}

TEST_F(RemoteScribeTest, BlackholePartitionTimesOut) {
  CategoryConfig config;
  config.name = "b";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  ASSERT_TRUE(remote_->Write("b", 0, "before").ok());

  server_->Partition("test.client", 400'000, PartitionMode::kBlackhole);
  const Status st = remote_->Write("b", 0, "swallowed");
  EXPECT_FALSE(st.ok());
  // Swallowed request, no response: the client's socket timeout fires.
  EXPECT_TRUE(st.code() == StatusCode::kDeadlineExceeded ||
              st.code() == StatusCode::kUnavailable)
      << st;
  EXPECT_TRUE(st.IsRetryable());
}

TEST_F(RemoteScribeTest, InjectPartitionRpcReachesServer) {
  CategoryConfig config;
  config.name = "adm";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  // An admin client partitions a *different* name prefix; its own
  // connection keeps working.
  ASSERT_TRUE(remote_
                  ->InjectPartition("worker.", 200'000,
                                    PartitionMode::kSever)
                  .ok());
  EXPECT_TRUE(remote_->Write("adm", 0, "still fine").ok());

  RemoteScribe worker(&clock_, "127.0.0.1", server_->port(), "worker.alpha",
                      FailFastOptions());
  const Status st = worker.Write("adm", 0, "cut off");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsRetryable()) << st;
}

TEST_F(RemoteScribeTest, FaultSiteRetriesTransparently) {
  CategoryConfig config;
  config.name = "f";
  ASSERT_TRUE(remote_->CreateCategory(config).ok());
  // One injected transient transport failure: the retry ladder absorbs it.
  FaultRegistry::Global()->FailNext("scribe.remote.rpc",
                                    StatusCode::kUnavailable, 1);
  EXPECT_TRUE(remote_->Write("f", 0, "survives").ok());
  EXPECT_GE(remote_->transport_retry_stats().retries, 1u);
  auto messages = local_->Read("f", 0, 0, 10);
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages->size(), 1u);

  // An injected Corruption must surface immediately (non-retryable).
  FaultRegistry::Global()->FailNext("scribe.remote.rpc",
                                    StatusCode::kCorruption, 1);
  EXPECT_EQ(remote_->Write("f", 0, "poisoned").code(),
            StatusCode::kCorruption);
  FaultRegistry::Global()->Reset();
}

// ---------------------------------------------------------------------------
// Classification against misbehaving peers (satellite: transient vs
// permanent).

TEST(RemoteClassificationTest, ConnectionRefusedIsRetryableUnavailable) {
  SimClock clock(1'000'000);
  // Bind-then-close to get a port nobody listens on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  const int dead_port = ntohs(addr.sin_port);
  ::close(fd);

  RemoteScribe remote(&clock, "127.0.0.1", dead_port, "lost.client",
                      FailFastOptions());
  const Status st = remote.Ping();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsRetryable()) << st;
  // Both attempts of the ladder ran (retryable means retried).
  EXPECT_GE(remote.transport_retry_stats().retries, 1u);
}

TEST(RemoteClassificationTest, ChecksumMismatchResponseIsCorruption) {
  SimClock clock(1'000'000);
  FakeBroker broker(FakeBroker::Behavior::kGarbageChecksum);
  RemoteScribe remote(&clock, "127.0.0.1", broker.port(), "c.client",
                      FailFastOptions());
  const Status st = remote.Ping();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st;
  EXPECT_FALSE(st.IsRetryable());
  // Permanent errors must not burn retry attempts.
  EXPECT_EQ(remote.transport_retry_stats().retries, 0u);
}

TEST(RemoteClassificationTest, WrongOpcodeResponseIsCorruption) {
  SimClock clock(1'000'000);
  FakeBroker broker(FakeBroker::Behavior::kWrongOpcode);
  RemoteScribe remote(&clock, "127.0.0.1", broker.port(), "c.client",
                      FailFastOptions());
  const Status st = remote.Ping();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st;
  EXPECT_FALSE(st.IsRetryable());
}

TEST(RemoteClassificationTest, SilentPeerIsRetryableDeadline) {
  SimClock clock(1'000'000);
  FakeBroker broker(FakeBroker::Behavior::kSilence);
  RemoteScribe remote(&clock, "127.0.0.1", broker.port(), "s.client",
                      FailFastOptions());
  const Status st = remote.Ping();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
  EXPECT_TRUE(st.IsRetryable());
}

TEST(RemoteClassificationTest, PeerCloseMidRpcIsRetryableUnavailable) {
  SimClock clock(1'000'000);
  FakeBroker broker(FakeBroker::Behavior::kCloseConnection);
  RemoteScribe remote(&clock, "127.0.0.1", broker.port(), "r.client",
                      FailFastOptions());
  const Status st = remote.Ping();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsRetryable()) << st;
}

// ---------------------------------------------------------------------------
// Durability through the transport: a broker restart loses no acked bytes.

TEST(RemoteDurabilityTest, AckedAppendsSurviveBrokerRestart) {
  const std::string dir = MakeTempDir("remote_scribe");
  SimClock clock(1'000'000);
  CategoryConfig config;
  config.name = "durable";
  config.persist_to_disk = true;
  config.fsync_appends = true;

  int port = 0;
  {
    Scribe scribe(&clock, dir);
    ASSERT_TRUE(scribe.CreateCategory(config).ok());
    ScribeServer server(&scribe);
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    RemoteScribe remote(&clock, "127.0.0.1", port, "writer",
                        FailFastOptions());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(remote.Write("durable", 0, "m" + std::to_string(i)).ok());
    }
    server.Stop();
  }

  // A fresh broker process over the same root recovers the segments.
  Scribe scribe(&clock, dir);
  ASSERT_TRUE(scribe.CreateCategory(config).ok());
  ScribeServer server(&scribe);
  ASSERT_TRUE(server.Start().ok());
  RemoteScribe remote(&clock, "127.0.0.1", server.port(), "reader",
                      FailFastOptions());
  auto messages = remote.Read("durable", 0, 0, 100);
  ASSERT_TRUE(messages.ok()) << messages.status();
  ASSERT_EQ(messages->size(), 10u);
  EXPECT_EQ((*messages)[9].payload, "m9");
  server.Stop();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace fbstream::scribe
