// Tests for Hive (day-partitioned warehouse) and the MapReduce runner
// (including map-side combining for monoid partial aggregation).

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/fs.h"
#include "storage/hive/hive.h"

namespace fbstream::hive {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"time", ValueType::kInt64},
                       {"topic", ValueType::kString},
                       {"score", ValueType::kInt64}});
}

Row MakeRow(const SchemaPtr& schema, int64_t time, const std::string& topic,
            int64_t score) {
  return Row(schema, {Value(time), Value(topic), Value(score)});
}

class HiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = MakeTempDir("hive");
    hive_ = std::make_unique<Hive>(root_);
    schema_ = EventSchema();
    ASSERT_TRUE(hive_->CreateTable("events", schema_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(root_).ok()); }

  std::string root_;
  std::unique_ptr<Hive> hive_;
  SchemaPtr schema_;
};

TEST_F(HiveTest, CreateTableValidation) {
  EXPECT_EQ(hive_->CreateTable("events", schema_).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(hive_->CreateTable("", schema_).ok());
  EXPECT_TRUE(hive_->HasTable("events"));
  EXPECT_FALSE(hive_->HasTable("nope"));
}

TEST_F(HiveTest, PartitionLifecycle) {
  std::vector<Row> rows = {MakeRow(schema_, 1, "sports", 5)};
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-01", rows).ok());
  // Not landed yet: reads must fail (the partition becomes available only
  // "after the day ends at midnight").
  EXPECT_FALSE(hive_->ReadPartition("events", "2016-01-01").ok());
  EXPECT_FALSE(hive_->IsPartitionLanded("events", "2016-01-01"));

  ASSERT_TRUE(hive_->LandPartition("events", "2016-01-01").ok());
  auto read = hive_->ReadPartition("events", "2016-01-01");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0].Get("topic").AsString(), "sports");
}

TEST_F(HiveTest, AppendsAccumulateWithinPartition) {
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-01",
                                    {MakeRow(schema_, 1, "a", 1)})
                  .ok());
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-01",
                                    {MakeRow(schema_, 2, "b", 2)})
                  .ok());
  ASSERT_TRUE(hive_->LandPartition("events", "2016-01-01").ok());
  auto read = hive_->ReadPartition("events", "2016-01-01");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
}

TEST_F(HiveTest, ListPartitionsOnlyLanded) {
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-02",
                                    {MakeRow(schema_, 1, "a", 1)})
                  .ok());
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-01",
                                    {MakeRow(schema_, 1, "a", 1)})
                  .ok());
  ASSERT_TRUE(hive_->LandPartition("events", "2016-01-01").ok());
  auto partitions = hive_->ListPartitions("events");
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(*partitions, std::vector<std::string>{"2016-01-01"});
  ASSERT_TRUE(hive_->LandPartition("events", "2016-01-02").ok());
  partitions = hive_->ListPartitions("events");
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(*partitions,
            (std::vector<std::string>{"2016-01-01", "2016-01-02"}));
}

TEST_F(HiveTest, EmptyDayLands) {
  ASSERT_TRUE(hive_->LandPartition("events", "2016-03-01").ok());
  auto read = hive_->ReadPartition("events", "2016-03-01");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

class MapReduceTest : public HiveTest {
 protected:
  void SetUp() override {
    HiveTest::SetUp();
    std::vector<Row> day1;
    std::vector<Row> day2;
    for (int i = 0; i < 50; ++i) {
      day1.push_back(
          MakeRow(schema_, i, i % 2 == 0 ? "sports" : "movies", 1));
      day2.push_back(MakeRow(schema_, 100 + i, "sports", 2));
    }
    ASSERT_TRUE(hive_->WritePartition("events", "2016-01-01", day1).ok());
    ASSERT_TRUE(hive_->LandPartition("events", "2016-01-01").ok());
    ASSERT_TRUE(hive_->WritePartition("events", "2016-01-02", day2).ok());
    ASSERT_TRUE(hive_->LandPartition("events", "2016-01-02").ok());
  }

  MapReduceSpec SumByTopicSpec() {
    MapReduceSpec spec;
    spec.output_schema = Schema::Make(
        {{"topic", ValueType::kString}, {"total", ValueType::kInt64}});
    spec.map = [](const Row& row) {
      return std::vector<KeyedRecord>{
          {row.Get("topic").AsString(), row.Get("score").ToString()}};
    };
    auto schema = spec.output_schema;
    spec.reduce = [schema](const std::string& key,
                           const std::vector<std::string>& records) {
      int64_t total = 0;
      for (const std::string& r : records) {
        total += strtoll(r.c_str(), nullptr, 10);
      }
      return std::vector<Row>{Row(schema, {Value(key), Value(total)})};
    };
    return spec;
  }
};

TEST_F(MapReduceTest, SumByKeyAcrossPartitions) {
  MapReduceCounters counters;
  auto result = RunMapReduce(*hive_, "events", {"2016-01-01", "2016-01-02"},
                             SumByTopicSpec(), &counters);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  int64_t sports = 0;
  int64_t movies = 0;
  for (const Row& row : *result) {
    if (row.Get("topic").AsString() == "sports") {
      sports = row.Get("total").AsInt64();
    } else {
      movies = row.Get("total").AsInt64();
    }
  }
  EXPECT_EQ(sports, 25 + 100);  // 25 day1 + 50*2 day2.
  EXPECT_EQ(movies, 25);
  EXPECT_EQ(counters.map_input_rows, 100u);
  EXPECT_EQ(counters.reduce_groups, 2u);
}

TEST_F(MapReduceTest, CombinerShrinksShuffle) {
  MapReduceSpec spec = SumByTopicSpec();
  MapReduceCounters without;
  auto r1 = RunMapReduce(*hive_, "events", {"2016-01-01", "2016-01-02"},
                         spec, &without);
  ASSERT_TRUE(r1.ok());

  spec.combine = [](const std::string& a, const std::string& b) {
    return std::to_string(strtoll(a.c_str(), nullptr, 10) +
                          strtoll(b.c_str(), nullptr, 10));
  };
  MapReduceCounters with;
  auto r2 = RunMapReduce(*hive_, "events", {"2016-01-01", "2016-01-02"},
                         spec, &with);
  ASSERT_TRUE(r2.ok());

  // Same results, far fewer shuffle records.
  EXPECT_EQ(r1->size(), r2->size());
  EXPECT_EQ(without.shuffle_records, 100u);
  EXPECT_EQ(with.shuffle_records, 2u);
}

TEST_F(MapReduceTest, MapOnlyJobCounts) {
  MapReduceSpec spec;
  spec.map = [](const Row& row) {
    if (row.Get("topic").AsString() != "sports") return std::vector<KeyedRecord>{};
    return std::vector<KeyedRecord>{{"k", "1"}};
  };
  spec.reduce = nullptr;
  MapReduceCounters counters;
  auto result = RunMapReduce(*hive_, "events", {"2016-01-01"}, spec,
                             &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(counters.map_output_records, 25u);
}

TEST_F(MapReduceTest, UnlandedPartitionFails) {
  ASSERT_TRUE(hive_->WritePartition("events", "2016-01-03",
                                    {MakeRow(schema_, 1, "a", 1)})
                  .ok());
  auto result =
      RunMapReduce(*hive_, "events", {"2016-01-03"}, SumByTopicSpec());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace fbstream::hive
