// Cluster-layer tests: heartbeat serde, exec-armed kill specs, and the
// supervisor's failure detector (restart on exit, timeout on partition,
// flap-storm backoff, no false positives on clean runs).
//
// Worker processes here are the real `noded` binary (path injected by
// CMake) in --heartbeat-only mode: supervision semantics without dragging
// a full workload into every assertion.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/heartbeat.h"
#include "cluster/supervisor.h"
#include "common/fault.h"
#include "common/fs.h"
#include "scribe/remote.h"
#include "scribe/scribe.h"

#ifndef FBSTREAM_NODED_BINARY
#error "FBSTREAM_NODED_BINARY must point at the noded executable"
#endif

namespace fbstream::cluster {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Heartbeat serde.

TEST(HeartbeatTest, EncodeDecodeRoundTrip) {
  Heartbeat hb;
  hb.worker = "alpha";
  hb.pid = 4242;
  hb.seq = 17;
  hb.sent_micros = 1'234'567;
  hb.events_processed = 99;
  hb.total_lag = 3;
  hb.state = WorkerState::kDraining;

  auto decoded = DecodeHeartbeat(EncodeHeartbeat(hb));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->worker, "alpha");
  EXPECT_EQ(decoded->pid, 4242);
  EXPECT_EQ(decoded->seq, 17u);
  EXPECT_EQ(decoded->sent_micros, 1'234'567);
  EXPECT_EQ(decoded->events_processed, 99u);
  EXPECT_EQ(decoded->total_lag, 3u);
  EXPECT_EQ(decoded->state, WorkerState::kDraining);
}

TEST(HeartbeatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeHeartbeat("").ok());
  EXPECT_FALSE(DecodeHeartbeat("not a heartbeat").ok());
  Heartbeat hb;
  hb.worker = "w";
  const std::string good = EncodeHeartbeat(hb);
  // Truncations and trailing junk are both rejected.
  EXPECT_FALSE(DecodeHeartbeat(std::string_view(good).substr(0, 3)).ok());
  EXPECT_FALSE(DecodeHeartbeat(good + "x").ok());
}

TEST(HeartbeatTest, EnsureCategoryIsIdempotent) {
  SimClock clock(1'000'000);
  scribe::Scribe bus(&clock);
  ASSERT_TRUE(EnsureHeartbeatCategory(&bus).ok());
  // Second caller (another process racing the first) must also succeed.
  ASSERT_TRUE(EnsureHeartbeatCategory(&bus).ok());
  Heartbeat hb;
  hb.worker = "w";
  hb.seq = 1;
  ASSERT_TRUE(AppendHeartbeat(&bus, hb).ok());
  auto messages = bus.Read(kHeartbeatCategory, 0, 0, 10);
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages->size(), 1u);
  auto decoded = DecodeHeartbeat((*messages)[0].payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->worker, "w");
}

// ---------------------------------------------------------------------------
// Status file parsing.

TEST(SupervisorStatusTest, ParseStatusFileRoundTrip) {
  const std::string text =
      "supervisor pid 100\n"
      "worker alpha pid 4242 alive 1 restarts 2 timeouts 1 seq 9 events 150 "
      "lag 3 state 1\n"
      "worker beta pid -1 alive 0 restarts 0 timeouts 0 seq 0 events 0 "
      "lag 0 state 0\n";
  auto rows = Supervisor::ParseStatusFile(text);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].pid, 4242);
  EXPECT_TRUE(rows[0].alive);
  EXPECT_EQ(rows[0].restarts, 2u);
  EXPECT_EQ(rows[0].timeouts, 1u);
  EXPECT_EQ(rows[0].seq, 9u);
  EXPECT_EQ(rows[0].events, 150u);
  EXPECT_EQ(rows[0].lag, 3u);
  EXPECT_EQ(rows[0].state, 1);
  EXPECT_EQ(rows[1].name, "beta");
  EXPECT_FALSE(rows[1].alive);
}

TEST(SupervisorStatusTest, ParseToleratesForeignText) {
  EXPECT_TRUE(Supervisor::ParseStatusFile("").empty());
  EXPECT_TRUE(Supervisor::ParseStatusFile("lorem ipsum\n\n###\n").empty());
}

// ---------------------------------------------------------------------------
// Exec-armed kill specs (satellite #1). The driver can only pass the spec
// through the environment: after execv only the environment crosses over,
// so this is the path a supervisor-spawned worker actually takes.

// Runs `noded` with extra argv and env entries; returns the wait status.
int RunNoded(const std::vector<std::string>& args,
             const std::vector<std::string>& env_extra) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const auto& kv : env_extra) {
      const size_t eq = kv.find('=');
      ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
    }
    std::vector<char*> argv;
    std::string binary = FBSTREAM_NODED_BINARY;
    argv.push_back(binary.data());
    std::vector<std::string> owned = args;
    for (auto& a : owned) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(96);
  }
  int wait_status = 0;
  EXPECT_EQ(::waitpid(pid, &wait_status, 0), pid);
  return wait_status;
}

int ExitCodeOf(int wait_status) {
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

TEST(KillSpecExecTest, SpecSurvivesExecAndKills) {
  const int status = RunNoded(
      {"--selftest-kill", "test.site"},
      {"FBSTREAM_KILL_SPEC=test.site#2", "FBSTREAM_PROCESS_NAME=worker.x"});
  EXPECT_EQ(ExitCodeOf(status), FaultRegistry::kKillExitCode);
}

TEST(KillSpecExecTest, SpecForOtherProcessIsIgnored) {
  const int status =
      RunNoded({"--selftest-kill", "test.site"},
               {"FBSTREAM_KILL_SPEC=test.site#2@worker.other",
                "FBSTREAM_PROCESS_NAME=worker.x"});
  EXPECT_EQ(ExitCodeOf(status), 42);  // Survived all 100 hits.
}

TEST(KillSpecExecTest, MarkerMakesKillOneShot) {
  const std::string dir = MakeTempDir("killspec");
  const std::string marker = dir + "/spent";
  const std::vector<std::string> env = {
      "FBSTREAM_KILL_SPEC=test.site#5!" + marker,
      "FBSTREAM_PROCESS_NAME=worker.x"};
  // First incarnation dies and leaves the marker...
  EXPECT_EQ(ExitCodeOf(RunNoded({"--selftest-kill", "test.site"}, env)),
            FaultRegistry::kKillExitCode);
  EXPECT_TRUE(FileExists(marker));
  // ...so the respawn — same environment, as after a supervisor re-exec —
  // does not crash-loop.
  EXPECT_EQ(ExitCodeOf(RunNoded({"--selftest-kill", "test.site"}, env)), 42);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(KillSpecExecTest, MultiSpecArmsPerProcess) {
  // Two specs, ';'-separated, each targeting a different process name: the
  // matching one fires, the other is ignored.
  const int status = RunNoded(
      {"--selftest-kill", "b.site"},
      {"FBSTREAM_KILL_SPEC=a.site#0@worker.a;b.site#1@worker.b",
       "FBSTREAM_PROCESS_NAME=worker.b"});
  EXPECT_EQ(ExitCodeOf(status), FaultRegistry::kKillExitCode);
}

// ---------------------------------------------------------------------------
// Supervisor behavior against real worker processes.

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("cluster_sup");
    clock_.SetMicros(1'000'000);
    broker_ = std::make_unique<scribe::Scribe>(&clock_);
    server_ = std::make_unique<scribe::ScribeServer>(broker_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  SupervisorOptions FastOptions() {
    SupervisorOptions options;
    options.broker_port = server_->port();
    options.status_dir = dir_;
    options.worker_binary = FBSTREAM_NODED_BINARY;
    options.heartbeat_only_workers = true;
    options.heartbeat_interval_micros = 20'000;
    options.heartbeat_timeout_micros = 300'000;
    options.startup_grace_micros = 5'000'000;
    options.restart_backoff_initial_micros = 20'000;
    options.restart_backoff_max_micros = 500'000;
    options.flap_window_micros = 2'000'000;
    return options;
  }

  // Polls GetStatus until `pred` or the deadline.
  template <typename Pred>
  bool WaitFor(Supervisor* sup, Pred pred, int timeout_ms = 8000) {
    const steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(timeout_ms);
    while (steady_clock::now() < deadline) {
      if (pred(sup->GetStatus())) return true;
      std::this_thread::sleep_for(milliseconds(20));
    }
    return false;
  }

  static bool AllBeating(const std::vector<Supervisor::WorkerStatus>& rows) {
    if (rows.empty()) return false;
    for (const auto& r : rows) {
      if (!r.alive || r.seq == 0) return false;
    }
    return true;
  }

  std::string dir_;
  SimClock clock_;
  std::unique_ptr<scribe::Scribe> broker_;
  std::unique_ptr<scribe::ScribeServer> server_;
};

TEST_F(SupervisorTest, CleanRunHasNoFalsePositiveRestarts) {
  Supervisor sup({{"hb1", {}}, {"hb2", {}}}, FastOptions());
  ASSERT_TRUE(sup.Start().ok());
  ASSERT_TRUE(WaitFor(&sup, AllBeating));
  // Hold for many heartbeat timeouts' worth of wall time: a detector that
  // false-positives fires well within this window.
  std::this_thread::sleep_for(milliseconds(1500));
  EXPECT_EQ(sup.TotalRestarts(), 0u);
  EXPECT_EQ(sup.TotalTimeouts(), 0u);
  auto rows = sup.GetStatus();
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.alive);
    EXPECT_GT(r.seq, 10u) << r.name;  // Beats kept flowing the whole time.
    EXPECT_EQ(r.state, static_cast<int>(WorkerState::kRunning));
  }
  sup.Stop();
  // A graceful stop is not a failure: counters stay clean.
  EXPECT_EQ(sup.TotalRestarts(), 0u);
}

TEST_F(SupervisorTest, SigkilledWorkerIsRestarted) {
  Supervisor sup({{"victim", {}}}, FastOptions());
  ASSERT_TRUE(sup.Start().ok());
  ASSERT_TRUE(WaitFor(&sup, AllBeating));
  const int64_t first_pid = sup.GetStatus()[0].pid;
  ASSERT_GT(first_pid, 0);

  ASSERT_EQ(::kill(static_cast<pid_t>(first_pid), SIGKILL), 0);

  // A successor incarnation must come up and beat under a new pid.
  ASSERT_TRUE(WaitFor(&sup, [&](const auto& rows) {
    return rows[0].alive && rows[0].pid != first_pid && rows[0].seq > 0;
  }));
  EXPECT_GE(sup.TotalRestarts(), 1u);
  sup.Stop();
}

TEST_F(SupervisorTest, PartitionedWorkerTimesOutAndRecovers) {
  auto options = FastOptions();
  Supervisor sup({{"island", {}}}, options);
  ASSERT_TRUE(sup.Start().ok());
  ASSERT_TRUE(WaitFor(&sup, AllBeating));
  const int64_t first_pid = sup.GetStatus()[0].pid;

  // Blackhole just the worker (prefix "worker.island") for well past the
  // heartbeat timeout. The supervisor's own connection stays healthy, so
  // its broker-freshness gate does not suppress the verdict.
  server_->Partition("worker.island", 1'200'000,
                     scribe::PartitionMode::kBlackhole);

  ASSERT_TRUE(WaitFor(
      &sup, [&](const auto&) { return sup.TotalTimeouts() >= 1; }, 10000));
  // After the partition lifts, a successor beats again.
  ASSERT_TRUE(WaitFor(&sup, [&](const auto& rows) {
    return rows[0].alive && rows[0].seq > 0 && rows[0].pid != first_pid;
  }));
  EXPECT_GE(sup.TotalRestarts(), 1u);
  sup.Stop();
}

TEST_F(SupervisorTest, FlapStormIsBoundedByBackoff) {
  auto options = FastOptions();
  options.heartbeat_only_workers = false;  // argv comes from extra args.
  options.extra_worker_args = {"--exit-code", "7"};
  // With 20ms initial backoff doubling to a 500ms cap, a 1.5s window fits
  // roughly: 20+40+80+160+320+500+500 — ~8 deaths. Without backoff a
  // fork/exec hot loop would rack up hundreds.
  Supervisor sup({{"flappy", {}}}, options);
  ASSERT_TRUE(sup.Start().ok());
  std::this_thread::sleep_for(milliseconds(1500));
  sup.Stop();
  const uint64_t restarts = sup.TotalRestarts();
  EXPECT_GE(restarts, 3u);   // The ladder is retrying...
  EXPECT_LE(restarts, 20u);  // ...but not hot-looping.
}

TEST_F(SupervisorTest, ReexecedSupervisorFencesStalePids) {
  auto options = FastOptions();
  const int64_t first_pid = [&] {
    Supervisor first({{"orphan", {}}}, options);
    EXPECT_TRUE(first.Start().ok());
    EXPECT_TRUE(WaitFor(&first, AllBeating));
    auto rows = first.GetStatus();
    // Simulate supervisor SIGKILL: drop supervision without Stop so the
    // worker process outlives its supervisor.
    first.Abandon();
    return rows[0].pid;
  }();
  ASSERT_GT(first_pid, 0);
  // The orphan is still alive and beating.
  ASSERT_EQ(::kill(static_cast<pid_t>(first_pid), 0), 0);

  // A re-executed supervisor over the same status dir must fence the
  // orphan before spawning its successor: two incarnations of one worker
  // must never run concurrently (split brain on the shard state).
  Supervisor second({{"orphan", {}}}, options);
  ASSERT_TRUE(second.Start().ok());
  ASSERT_TRUE(WaitFor(&second, AllBeating));
  EXPECT_NE(second.GetStatus()[0].pid, first_pid);
  EXPECT_NE(::kill(static_cast<pid_t>(first_pid), 0), 0);  // Fenced.
  second.Stop();
}

}  // namespace
}  // namespace fbstream::cluster
