// Cross-module integration tests: full DAGs spanning Scribe, Stylus, Puma,
// Laser, Scuba, Hive, ZippyDB, and HDFS, with crash injection mid-pipeline
// and end-to-end correctness checks. These are the "hundreds of data
// pipelines" scenarios in miniature.

#include <gtest/gtest.h>

#include <map>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "presto/presto.h"
#include "puma/app.h"
#include "puma/parser.h"
#include "scribe/scribe.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"
#include "storage/scuba/scuba.h"

namespace fbstream {
namespace {

using stylus::Event;
using stylus::NodeConfig;
using stylus::NodeShard;
using stylus::Pipeline;
using stylus::StateBackend;

SchemaPtr RawSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"kind", ValueType::kString},
                       {"dim_id", ValueType::kInt64},
                       {"tag", ValueType::kString}});
}

SchemaPtr EnrichedSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"tag", ValueType::kString},
                       {"language", ValueType::kString}});
}

// Filter: keep only kind == "post".
class PostFilter : public stylus::StatelessProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* out) override {
    if (event.row.Get("kind").ToString() == "post") {
      out->push_back(event.row);
    }
  }
};

// Joiner: dim_id -> language via Laser.
class LanguageJoiner : public stylus::StatelessProcessor {
 public:
  explicit LanguageJoiner(laser::LaserApp* dims) : dims_(dims) {}
  void Process(const Event& event, std::vector<Row>* out) override {
    std::string language = "??";
    auto dim = dims_->Get(event.row.Get("dim_id"));
    if (dim.ok()) language = dim->Get("language").ToString();
    out->push_back(Row(EnrichedSchema(),
                       {event.row.Get("event_time"), event.row.Get("tag"),
                        Value(language)}));
  }

 private:
  laser::LaserApp* dims_;
};

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("integration");
    scribe_ = std::make_unique<scribe::Scribe>(&clock_);
    for (const char* name : {"raw", "posts", "enriched", "dims"}) {
      scribe::CategoryConfig config;
      config.name = name;
      config.num_buckets = 2;
      ASSERT_TRUE(scribe_->CreateCategory(config).ok());
    }
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  SimClock clock_{1};
  std::string dir_;
  std::unique_ptr<scribe::Scribe> scribe_;
};

TEST_F(IntegrationTest, FullDagWithMidRunCrashesEndsCorrect) {
  // Laser dimension table.
  auto dim_schema = Schema::Make(
      {{"dim_id", ValueType::kInt64}, {"language", ValueType::kString}});
  laser::LaserAppConfig dims_config;
  dims_config.name = "dims";
  dims_config.scribe_category = "dims";
  dims_config.input_schema = dim_schema;
  dims_config.key_columns = {"dim_id"};
  dims_config.value_columns = {"language"};
  auto dims = laser::LaserApp::Create(dims_config, scribe_.get(), &clock_,
                                      dir_ + "/laser");
  ASSERT_TRUE(dims.ok());
  {
    TextRowCodec codec(dim_schema);
    for (int64_t id = 0; id < 10; ++id) {
      Row row(dim_schema, {Value(id), Value(id % 2 == 0 ? "en" : "es")});
      ASSERT_TRUE(scribe_->WriteSharded("dims", std::to_string(id),
                                        codec.Encode(row))
                      .ok());
    }
    ASSERT_TRUE((*dims)->PollOnce().ok());
  }

  // Scuba sink at the end of the DAG.
  scuba::Scuba scuba(scribe_.get());
  ASSERT_TRUE(scuba.CreateTable("enriched", EnrichedSchema()).ok());
  ASSERT_TRUE(scuba.AttachCategory("enriched", "enriched").ok());

  // Two Stylus nodes with exactly-once state.
  Pipeline pipeline(scribe_.get(), &clock_);
  {
    NodeConfig filter;
    filter.name = "filter";
    filter.input_category = "raw";
    filter.input_schema = RawSchema();
    filter.event_time_column = "event_time";
    filter.stateless_factory = [] { return std::make_unique<PostFilter>(); };
    filter.backend = StateBackend::kNone;
    filter.state_dir = dir_ + "/state";
    filter.checkpoint_every_events = 50;
    filter.sink = std::make_shared<stylus::ScribeSink>(
        scribe_.get(), "posts", RawSchema(),
        std::vector<std::string>{"dim_id"});
    ASSERT_TRUE(pipeline.AddNode(filter).ok());
  }
  {
    NodeConfig joiner;
    joiner.name = "joiner";
    joiner.input_category = "posts";
    joiner.input_schema = RawSchema();
    joiner.event_time_column = "event_time";
    laser::LaserApp* dims_ptr = dims->get();
    joiner.stateless_factory = [dims_ptr] {
      return std::make_unique<LanguageJoiner>(dims_ptr);
    };
    joiner.backend = StateBackend::kNone;
    joiner.state_dir = dir_ + "/state";
    joiner.checkpoint_every_events = 50;
    joiner.sink = std::make_shared<stylus::ScribeSink>(
        scribe_.get(), "enriched", EnrichedSchema(),
        std::vector<std::string>{"tag"});
    ASSERT_TRUE(pipeline.AddNode(joiner).ok());
  }

  // Feed events; crash the joiner every few rounds; everything must still
  // come out exactly right for exactly-once / at-most-once-free paths
  // because the stateless nodes replay unacknowledged input.
  TextRowCodec codec(RawSchema());
  Rng rng(5);
  int posts_written = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      const bool is_post = rng.Bernoulli(0.6);
      if (is_post) ++posts_written;
      Row row(RawSchema(),
              {Value(round * 100 + i), Value(is_post ? "post" : "like"),
               Value(static_cast<int64_t>(rng.Uniform(10))),
               Value("tag" + std::to_string(rng.Uniform(4)))});
      ASSERT_TRUE(scribe_->WriteSharded("raw", std::to_string(i),
                                        codec.Encode(row))
                      .ok());
    }
    if (round % 3 == 1) {
      // Kill one joiner shard mid-stream; the filter keeps going.
      pipeline.Shard("joiner", round % 2)->Crash();
      ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
      ASSERT_TRUE(pipeline.RecoverAll().ok());
    }
    ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  }
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());
  (void)scuba.PollAll();

  // Every post arrived enriched (stateless + at-least-once + unique tags
  // per row means duplicates are possible only if a crash hit between
  // emission and offset save; none did because crashes were clean).
  scuba::Query query;
  query.aggregates.push_back({scuba::AggKind::kCount, "", 0});
  auto count = scuba.GetTable("enriched")->Run(query);
  ASSERT_TRUE(count.ok());
  EXPECT_GE(count->rows[0].aggregates[0], posts_written);

  // Language join worked: only "en"/"es" appear.
  scuba::Query langs;
  langs.group_by = {"language"};
  langs.aggregates.push_back({scuba::AggKind::kCount, "", 0});
  auto lang_result = scuba.GetTable("enriched")->Run(langs);
  ASSERT_TRUE(lang_result.ok());
  for (const auto& row : lang_result->rows) {
    const std::string lang = row.group[0].ToString();
    EXPECT_TRUE(lang == "en" || lang == "es") << lang;
  }
}

TEST_F(IntegrationTest, PumaStreamFeedsStylusNode) {
  // §6.1: "We can and do create stream processing DAGs that contain a mix
  // of Puma, Swift, and Stylus applications."
  scribe::CategoryConfig out;
  out.name = "counted";
  ASSERT_TRUE(scribe_->CreateCategory(out).ok());

  // Puma filter stream: raw -> posts (SQL).
  puma::PumaService puma_service(scribe_.get(), &clock_,
                                 puma::PumaAppOptions{});
  auto diff = puma_service.SubmitApp(R"(
    CREATE APPLICATION filter;
    CREATE INPUT TABLE raw (event_time BIGINT, kind, dim_id BIGINT, tag)
      FROM SCRIBE("raw") TIME event_time;
    CREATE STREAM posts AS
      SELECT event_time, kind, dim_id, tag FROM raw
      WHERE kind = 'post'
      EMIT TO SCRIBE("posts");
  )");
  ASSERT_TRUE(diff.ok()) << diff.status();
  ASSERT_TRUE(puma_service.AcceptDiff(*diff).ok());

  // Stylus counter over the Puma output.
  auto counter_sink = std::make_shared<stylus::CollectingSink>();
  class Counter : public stylus::StatefulProcessor {
   public:
    void Process(const Event&, std::vector<Row>*) override { ++count_; }
    void OnCheckpoint(Micros, std::vector<Row>* out) override {
      auto schema = Schema::Make({{"count", ValueType::kInt64}});
      out->push_back(Row(schema, {Value(count_)}));
    }
    std::string SerializeState() const override {
      return std::to_string(count_);
    }
    Status RestoreState(std::string_view data) override {
      count_ = strtoll(std::string(data).c_str(), nullptr, 10);
      return Status::OK();
    }

   private:
    int64_t count_ = 0;
  };
  Pipeline pipeline(scribe_.get(), &clock_);
  NodeConfig counter;
  counter.name = "counter";
  counter.input_category = "posts";
  counter.input_schema = RawSchema();
  counter.event_time_column = "event_time";
  counter.stateful_factory = [] { return std::make_unique<Counter>(); };
  counter.state_semantics = stylus::StateSemantics::kExactlyOnce;
  counter.backend = StateBackend::kLocal;
  counter.state_dir = dir_ + "/state";
  counter.sink = counter_sink;
  ASSERT_TRUE(pipeline.AddNode(counter).ok());

  TextRowCodec codec(RawSchema());
  int posts = 0;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const bool is_post = rng.Bernoulli(0.5);
    if (is_post) ++posts;
    Row row(RawSchema(), {Value(i), Value(is_post ? "post" : "like"),
                          Value(0), Value("t")});
    ASSERT_TRUE(
        scribe_->WriteSharded("raw", std::to_string(i), codec.Encode(row))
            .ok());
  }
  ASSERT_TRUE(puma_service.PollAll().ok());
  ASSERT_TRUE(pipeline.RunUntilQuiescent().ok());

  // The SQL filter delivered exactly the posts into "posts"...
  size_t delivered = 0;
  for (int b = 0; b < scribe_->NumBuckets("posts"); ++b) {
    auto next = scribe_->NextSequence("posts", b);
    ASSERT_TRUE(next.ok());
    delivered += *next;
  }
  EXPECT_EQ(delivered, static_cast<size_t>(posts));
  // ...and the Stylus counter consumed all of them (zero lag) and emitted
  // progress rows along the way.
  for (const auto& report : pipeline.GetProcessingLag()) {
    EXPECT_EQ(report.lag_messages, 0u);
  }
  EXPECT_FALSE(counter_sink->rows().empty());
}

TEST_F(IntegrationTest, WarehouseRoundTrip) {
  // Stream -> Hive archive -> Presto daily query -> Laser -> stream join.
  hive::Hive hive(dir_ + "/hive");
  ASSERT_TRUE(hive.CreateTable("raw_archive", RawSchema()).ok());
  std::vector<Row> day;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    day.push_back(Row(RawSchema(),
                      {Value(i), Value("post"),
                       Value(static_cast<int64_t>(rng.Uniform(5))),
                       Value("tag" + std::to_string(rng.Uniform(3)))}));
  }
  ASSERT_TRUE(hive.WritePartition("raw_archive", "2016-01-01", day).ok());
  ASSERT_TRUE(hive.LandPartition("raw_archive", "2016-01-01").ok());

  // Daily Presto query computes per-tag popularity.
  presto::Presto presto(&hive);
  auto result = presto.Execute(
      "SELECT tag, count(*) AS popularity FROM raw_archive GROUP BY tag;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);

  // Result goes to Laser for lookup joins by streaming apps.
  laser::Laser laser_service(scribe_.get(), &clock_, dir_ + "/laser");
  laser::LaserAppConfig config;
  config.name = "tag_popularity";
  config.input_schema = result->schema;
  config.key_columns = {"tag"};
  config.value_columns = {"popularity"};
  ASSERT_TRUE(laser_service.DeployApp(config).ok());
  ASSERT_TRUE(presto::Presto::SendToLaser(
                  *result, laser_service.GetApp("tag_popularity"))
                  .ok());

  // A Puma app joins the live stream against yesterday's popularity.
  puma::PumaAppOptions options;
  options.laser = &laser_service;
  auto spec = puma::ParseApp(R"(
    CREATE APPLICATION weighted;
    CREATE INPUT TABLE raw (event_time BIGINT, kind, dim_id BIGINT, tag,
                            popularity BIGINT)
      FROM SCRIBE("raw") TIME event_time
      JOIN LASER("tag_popularity") ON tag;
    CREATE TABLE weight AS
      SELECT tag, count(*) AS n, max(popularity) AS yesterday
      FROM raw [5 minutes];
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto app = puma::PumaApp::Create(std::move(spec).value(), scribe_.get(),
                                   &clock_, options);
  ASSERT_TRUE(app.ok()) << app.status();

  TextRowCodec codec(RawSchema());
  Row live(RawSchema(), {Value(1), Value("post"), Value(0), Value("tag0")});
  ASSERT_TRUE(scribe_->WriteSharded("raw", "x", codec.Encode(live)).ok());
  ASSERT_TRUE((*app)->PollOnce().ok());

  auto rows = (*app)->QueryWindow("weight", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].group[0].ToString(), "tag0");
  // The joined popularity came from the Presto result via Laser.
  EXPECT_GT((*rows)[0].aggregates[1].CoerceDouble(), 0);
}

}  // namespace
}  // namespace fbstream
