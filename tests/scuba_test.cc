// Tests for Scuba: ingestion (with sampling), filters, group-by,
// aggregates, time series, top-N series limiting, Scribe attachment, and
// read-time CPU accounting.

#include <gtest/gtest.h>

#include "common/serde.h"
#include "storage/scuba/scuba.h"

namespace fbstream::scuba {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"time", ValueType::kInt64},
                       {"app", ValueType::kString},
                       {"metric", ValueType::kString},
                       {"value", ValueType::kDouble},
                       {"user", ValueType::kString}});
}

Row MakeRow(const SchemaPtr& schema, int64_t time, const std::string& app,
            const std::string& metric, double value,
            const std::string& user = "u") {
  return Row(schema,
             {Value(time), Value(app), Value(metric), Value(value),
              Value(user)});
}

TEST(ScubaTableTest, CountAndFilter) {
  ScubaTable table("events", EventSchema());
  for (int i = 0; i < 10; ++i) {
    table.AddRow(MakeRow(table.schema(), i, i % 2 == 0 ? "fb4a" : "msgr",
                         "cold_start", 1.0 * i));
  }
  Query query;
  query.filters.push_back({"app", FilterOp::kEq, Value("fb4a")});
  query.aggregates.push_back({AggKind::kCount, "", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->rows[0].aggregates[0], 5.0);
  EXPECT_EQ(result->rows_scanned, 10u);  // Read-time aggregation scans all.
}

TEST(ScubaTableTest, GroupByWithMultipleAggregates) {
  ScubaTable table("events", EventSchema());
  table.AddRow(MakeRow(table.schema(), 1, "fb4a", "m", 10));
  table.AddRow(MakeRow(table.schema(), 2, "fb4a", "m", 30));
  table.AddRow(MakeRow(table.schema(), 3, "msgr", "m", 5));
  Query query;
  query.group_by = {"app"};
  query.aggregates.push_back({AggKind::kCount, "", 0});
  query.aggregates.push_back({AggKind::kSum, "value", 0});
  query.aggregates.push_back({AggKind::kAvg, "value", 0});
  query.aggregates.push_back({AggKind::kMin, "value", 0});
  query.aggregates.push_back({AggKind::kMax, "value", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  const ResultRow& fb4a = result->rows[0];
  EXPECT_EQ(fb4a.group[0].AsString(), "fb4a");
  EXPECT_DOUBLE_EQ(fb4a.aggregates[0], 2);
  EXPECT_DOUBLE_EQ(fb4a.aggregates[1], 40);
  EXPECT_DOUBLE_EQ(fb4a.aggregates[2], 20);
  EXPECT_DOUBLE_EQ(fb4a.aggregates[3], 10);
  EXPECT_DOUBLE_EQ(fb4a.aggregates[4], 30);
}

TEST(ScubaTableTest, PercentileExact) {
  ScubaTable table("events", EventSchema());
  for (int i = 1; i <= 100; ++i) {
    table.AddRow(MakeRow(table.schema(), i, "a", "m", i));
  }
  Query query;
  query.aggregates.push_back({AggKind::kPercentile, "value", 0.5});
  query.aggregates.push_back({AggKind::kPercentile, "value", 0.99});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->rows[0].aggregates[0], 50.5, 0.01);
  EXPECT_NEAR(result->rows[0].aggregates[1], 99.01, 0.1);
}

TEST(ScubaTableTest, UniquesApproximate) {
  ScubaTable table("events", EventSchema());
  for (int i = 0; i < 5000; ++i) {
    table.AddRow(MakeRow(table.schema(), i, "a", "m", 1,
                         "user" + std::to_string(i % 1000)));
  }
  Query query;
  query.aggregates.push_back({AggKind::kUniques, "user", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->rows[0].aggregates[0], 1000, 100);
}

TEST(ScubaTableTest, TimeSeriesBucketsAndRange) {
  ScubaTable table("events", EventSchema());
  for (int64_t t = 0; t < 100; ++t) {
    table.AddRow(MakeRow(table.schema(), t * kMicrosPerSecond, "a", "m", 1));
  }
  Query query;
  query.time_column = "time";
  query.bucket_micros = 10 * kMicrosPerSecond;
  query.min_time = 20 * kMicrosPerSecond;
  query.max_time = 60 * kMicrosPerSecond;
  query.aggregates.push_back({AggKind::kCount, "", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 4u);  // Buckets 20,30,40,50.
  for (const ResultRow& row : result->rows) {
    EXPECT_DOUBLE_EQ(row.aggregates[0], 10);
  }
  EXPECT_EQ(result->rows[0].bucket, 20 * kMicrosPerSecond);
}

TEST(ScubaTableTest, LimitKeepsTopSeries) {
  // §5.2: "Most Scuba queries have a limit of 7" — only the biggest series
  // survive.
  ScubaTable table("events", EventSchema());
  for (int app = 0; app < 20; ++app) {
    for (int i = 0; i <= app; ++i) {
      table.AddRow(MakeRow(table.schema(), i, "app" + std::to_string(app),
                           "m", 1));
    }
  }
  Query query;
  query.group_by = {"app"};
  query.aggregates.push_back({AggKind::kCount, "", 0});
  query.limit = 7;
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 7u);
  for (const ResultRow& row : result->rows) {
    EXPECT_GE(row.aggregates[0], 14);  // Only the largest groups.
  }
}

TEST(ScubaTableTest, ContainsFilter) {
  ScubaTable table("events", EventSchema());
  table.AddRow(MakeRow(table.schema(), 1, "a", "posts #superbowl yay", 1));
  table.AddRow(MakeRow(table.schema(), 2, "a", "other post", 1));
  Query query;
  query.filters.push_back(
      {"metric", FilterOp::kContains, Value("#superbowl")});
  query.aggregates.push_back({AggKind::kCount, "", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].aggregates[0], 1);
}

TEST(ScubaTableTest, SamplingReducesRows) {
  ScubaTable table("events", EventSchema(), /*sample_rate=*/0.1,
                   /*sample_seed=*/7);
  int kept = 0;
  for (int i = 0; i < 10000; ++i) {
    if (table.AddRow(MakeRow(table.schema(), i, "a", "m", 1))) ++kept;
  }
  EXPECT_EQ(table.num_rows(), static_cast<size_t>(kept));
  EXPECT_NEAR(kept, 1000, 150);
}

TEST(ScubaTableTest, InvalidQueriesRejected) {
  ScubaTable table("events", EventSchema());
  Query no_aggs;
  EXPECT_FALSE(table.Run(no_aggs).ok());
  Query bad_ts;
  bad_ts.time_column = "time";
  bad_ts.bucket_micros = 0;
  bad_ts.aggregates.push_back({AggKind::kCount, "", 0});
  EXPECT_FALSE(table.Run(bad_ts).ok());
}

TEST(ScubaTableTest, CpuAccountingAccumulates) {
  ScubaTable table("events", EventSchema());
  for (int i = 0; i < 100; ++i) {
    table.AddRow(MakeRow(table.schema(), i, "a", "m", 1));
  }
  Query query;
  query.aggregates.push_back({AggKind::kCount, "", 0});
  ASSERT_TRUE(table.Run(query).ok());
  ASSERT_TRUE(table.Run(query).ok());
  EXPECT_EQ(table.total_rows_scanned(), 200u);  // Every query rescans.
}

TEST(ScubaTableTest, RetentionExpiresOldRows) {
  ScubaTable table("events", EventSchema());
  for (int i = 0; i < 100; ++i) {
    table.AddRow(MakeRow(table.schema(), i * kMicrosPerMinute, "a", "m", 1));
  }
  const size_t dropped = table.ExpireBefore("time", 60 * kMicrosPerMinute);
  EXPECT_EQ(dropped, 60u);
  EXPECT_EQ(table.num_rows(), 40u);
  Query query;
  query.aggregates.push_back({AggKind::kCount, "", 0});
  auto result = table.Run(query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].aggregates[0], 40);
}

TEST(ScubaServiceTest, ScribeIngestion) {
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "scuba_in";
  config.num_buckets = 2;
  ASSERT_TRUE(bus.CreateCategory(config).ok());

  Scuba scuba(&bus);
  ASSERT_TRUE(scuba.CreateTable("events", EventSchema()).ok());
  ASSERT_TRUE(scuba.AttachCategory("events", "scuba_in").ok());
  EXPECT_FALSE(scuba.AttachCategory("missing", "scuba_in").ok());
  EXPECT_FALSE(scuba.AttachCategory("events", "missing").ok());

  TextRowCodec codec(EventSchema());
  for (int i = 0; i < 10; ++i) {
    Row row = MakeRow(EventSchema(), i, "fb4a", "m", i);
    ASSERT_TRUE(
        bus.WriteSharded("scuba_in", std::to_string(i), codec.Encode(row))
            .ok());
  }
  EXPECT_EQ(scuba.PollAll(), 10u);
  EXPECT_EQ(scuba.GetTable("events")->num_rows(), 10u);
  EXPECT_EQ(scuba.PollAll(), 0u);  // Drained.
}

}  // namespace
}  // namespace fbstream::scuba
