#!/usr/bin/env bash
# Multi-process distributed chaos smoke: runs the dist_chaos_test harness
# (ctest label `dist`) with reduced round counts so CI gets real
# broker/supervisor/worker process coverage in under a minute. Each test
# stands up a scribed broker, a supervisord, and two noded workers, then
# storms them — whole-worker SIGKILL, supervisor SIGKILL + re-exec (with
# occasional local-state wipes forcing HDFS restore), and timed
# worker<->broker partitions — and differentially checks the drained output
# against a golden single-process replay of the identical input. The full
# acceptance soak (25 kill rounds + 10 partition rounds per semantics mode)
# is the default when the env knobs are unset.
#
# Usage: scripts/dist_smoke.sh [build-dir] [kill-rounds] [partition-rounds]
#   (defaults: build, 4 kill rounds, 2 partition rounds per semantics mode)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
KILL_ROUNDS="${2:-4}"
PARTITION_ROUNDS="${3:-2}"

cmake --build "$BUILD_DIR" -j --target dist_chaos_test scribed noded supervisord

echo "== dist smoke: $KILL_ROUNDS kill + $PARTITION_ROUNDS partition rounds per mode =="
FBSTREAM_DIST_KILL_ROUNDS="$KILL_ROUNDS" \
FBSTREAM_DIST_PARTITION_ROUNDS="$PARTITION_ROUNDS" \
  "$BUILD_DIR/tests/dist_chaos_test"
echo "dist smoke passed."
