#!/usr/bin/env bash
# Doc drift check, run by the `docs-check` CMake target:
#  1. every source module (a directory under src/ with its own CMakeLists)
#     appears in README.md's module map;
#  2. every bench binary (bench/bench_*.cc) appears in EXPERIMENTS.md;
#  3. OBSERVABILITY.md and QUERYING.md are linked from the entry-point
#     docs (README.md; DESIGN.md for observability);
#  4. every metric-name literal registered in src/ appears in
#     OBSERVABILITY.md's inventory. (tests/observability_test.cc checks the
#     *runtime* registry of its own binary against the doc; this static
#     grep also covers metrics that only lazily register in binaries the
#     test never links, e.g. query-serving meters.)
#
# Usage: scripts/check_docs.sh   (from anywhere inside the repo)
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0
fail() {
  echo "check_docs: $1" >&2
  failures=$((failures + 1))
}

# 1. Module map coverage: src/<path>/CMakeLists.txt -> "src/<path>" mentioned
# in README.md (src itself is just the aggregator).
while IFS= read -r cmakelists; do
  module_dir="$(dirname "$cmakelists")"
  [ "$module_dir" = "src" ] && continue
  if ! grep -qF "$module_dir" README.md; then
    fail "module $module_dir missing from README.md module map"
  fi
done < <(find src -name CMakeLists.txt | sort)

# 2. Experiment coverage: every bench binary documented.
for bench_src in bench/bench_*.cc; do
  bench_name="$(basename "$bench_src" .cc)"
  if ! grep -qF "$bench_name" EXPERIMENTS.md; then
    fail "bench binary $bench_name missing from EXPERIMENTS.md"
  fi
done

# 3. The observability and query-serving stories are discoverable from the
# entry-point docs.
for doc in README.md DESIGN.md; do
  if ! grep -qF "OBSERVABILITY.md" "$doc"; then
    fail "$doc does not link OBSERVABILITY.md"
  fi
done
if [ ! -f QUERYING.md ]; then
  fail "QUERYING.md is missing"
elif ! grep -qF "QUERYING.md" README.md; then
  fail "README.md does not link QUERYING.md"
fi

# 4. Metric inventory, statically: every name literal handed to
# GetCounter/GetHistogram/GetGauge in src/ must appear (backquoted) in
# OBSERVABILITY.md. The one-line -A1 window covers registrations whose name
# literal wraps to the next line.
while IFS= read -r metric; do
  if ! grep -qF "\`$metric\`" OBSERVABILITY.md; then
    fail "metric $metric is registered in src/ but not in OBSERVABILITY.md"
  fi
done < <(grep -rhA1 --include='*.cc' --include='*.h' \
             -E 'Get(Counter|Histogram|Gauge)\(' src |
         grep -oE '"[a-z][a-z0-9_]*(\.[a-z0-9_]+)+"' | tr -d '"' | sort -u)

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures problem(s) found." >&2
  exit 1
fi
echo "check_docs: README module map, EXPERIMENTS coverage, metric inventory, and doc links OK."
