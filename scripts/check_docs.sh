#!/usr/bin/env bash
# Doc drift check, run by the `docs-check` CMake target:
#  1. every source module (a directory under src/ with its own CMakeLists)
#     appears in README.md's module map;
#  2. every bench binary (bench/bench_*.cc) appears in EXPERIMENTS.md;
#  3. OBSERVABILITY.md is linked from README.md and DESIGN.md.
# (The metric inventory inside OBSERVABILITY.md is checked against the live
# registry by tests/observability_test.cc, not here.)
#
# Usage: scripts/check_docs.sh   (from anywhere inside the repo)
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0
fail() {
  echo "check_docs: $1" >&2
  failures=$((failures + 1))
}

# 1. Module map coverage: src/<path>/CMakeLists.txt -> "src/<path>" mentioned
# in README.md (src itself is just the aggregator).
while IFS= read -r cmakelists; do
  module_dir="$(dirname "$cmakelists")"
  [ "$module_dir" = "src" ] && continue
  if ! grep -qF "$module_dir" README.md; then
    fail "module $module_dir missing from README.md module map"
  fi
done < <(find src -name CMakeLists.txt | sort)

# 2. Experiment coverage: every bench binary documented.
for bench_src in bench/bench_*.cc; do
  bench_name="$(basename "$bench_src" .cc)"
  if ! grep -qF "$bench_name" EXPERIMENTS.md; then
    fail "bench binary $bench_name missing from EXPERIMENTS.md"
  fi
done

# 3. The observability story is discoverable from the entry-point docs.
for doc in README.md DESIGN.md; do
  if ! grep -qF "OBSERVABILITY.md" "$doc"; then
    fail "$doc does not link OBSERVABILITY.md"
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures problem(s) found." >&2
  exit 1
fi
echo "check_docs: README module map, EXPERIMENTS coverage, and observability links OK."
