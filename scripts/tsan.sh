#!/usr/bin/env bash
# ThreadSanitizer run for the layers the parallel shard scheduler touches:
# scribe (bucket logs + tailer cursors), core (pipeline/node/checkpoint),
# monitoring (sampler + auto-scaler racing live rounds), the
# serial-vs-parallel differential suite, the continuous engine (per-shard
# event loops + overlapped commit pool + backpressure + executor-teardown
# torture), observability (lock-free histogram recorders + the telemetry
# exporter racing instrumented rounds), and the concurrent LSM (lock-free
# reads racing the writer queue and the background flush/compaction thread),
# the socket Scribe transport (per-connection server threads racing the
# acceptor and Stop; the client's serialized-RPC mutex), and the query
# serving layer (block-parallel Scuba scans racing ingest/retention; Laser's
# lock-free read path racing flush/compaction).
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DFBSTREAM_TSAN=ON
cmake --build "$BUILD_DIR" -j --target \
  scribe_test remote_scribe_test stylus_test monitoring_test \
  parallel_pipeline_test continuous_pipeline_test chaos_test \
  observability_test lsm_concurrency_test query_serving_test

for t in scribe_test remote_scribe_test stylus_test monitoring_test \
         parallel_pipeline_test continuous_pipeline_test chaos_test \
         observability_test lsm_concurrency_test query_serving_test; do
  echo "== TSan: $t =="
  TSAN_OPTIONS="halt_on_error=1" "$BUILD_DIR/tests/$t"
done
echo "TSan suite passed."
