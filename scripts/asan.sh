#!/usr/bin/env bash
# Address+UB sanitizer run for the fault-injection and recovery paths: the
# chaos soak (faults + crashes + degraded-mode resync), the layers whose
# error-handling branches the fault registry exercises (scribe, lsm, hdfs,
# zippydb), the core node/checkpoint machinery, the socket Scribe transport
# (framing, reconnect, partition modes), the supervisor (fork/exec,
# fencing, heartbeat timeout verdicts), and the query serving layer
# (compiled-expression closures, block scans, Laser's reused read buffers).
#
# Usage: scripts/asan.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DFBSTREAM_ASAN=ON
cmake --build "$BUILD_DIR" -j --target \
  common_test scribe_test remote_scribe_test cluster_test lsm_test \
  hdfs_test zippydb_test stylus_test continuous_pipeline_test chaos_test \
  crash_recovery_test query_serving_test

for t in common_test scribe_test remote_scribe_test cluster_test lsm_test \
         hdfs_test zippydb_test stylus_test continuous_pipeline_test \
         chaos_test crash_recovery_test query_serving_test; do
  echo "== ASan: $t =="
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    "$BUILD_DIR/tests/$t"
done
echo "ASan suite passed."
