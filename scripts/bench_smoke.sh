#!/usr/bin/env bash
# CI-sized sanity run of the canonical LSM mixed workload: small preload,
# one-second phases, JSON to a scratch path. Verifies the harness still
# runs end to end and emits well-formed output; real numbers come from the
# full run (`bench_lsm --mixed`), recorded in BENCH_LSM.json.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="$(mktemp -t bench_lsm_smoke.XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

cmake --build "$BUILD_DIR" -j --target bench_lsm
"$BUILD_DIR/bench/bench_lsm" --mixed --smoke --out "$OUT"

# Well-formed and carries both engines' numbers.
grep -q '"baseline_single_mutex"' "$OUT"
grep -q '"concurrent_lsm"' "$OUT"
grep -q '"block_cache"' "$OUT"
echo "bench smoke passed ($OUT)"
