#!/usr/bin/env bash
# CI-sized sanity run of the JSON-emitting benches: the canonical LSM mixed
# workload (small preload, one-second phases) and the crash-recovery bench
# (shrunk state). JSON goes to scratch paths. Verifies the harnesses still
# run end to end and emit well-formed output; real numbers come from the
# full runs (`bench_lsm --mixed`, `bench_recovery`,
# `bench_parallel_pipeline --continuous`, `bench_distributed`,
# `bench_query`), recorded in BENCH_LSM.json, BENCH_RECOVERY.json,
# BENCH_CONTINUOUS.json, BENCH_DISTRIBUTED.json, and BENCH_QUERY.json.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="$(mktemp -t bench_lsm_smoke.XXXXXX.json)"
RECOVERY_OUT="$(mktemp -t bench_recovery_smoke.XXXXXX.json)"
CONTINUOUS_OUT="$(mktemp -t bench_continuous_smoke.XXXXXX.json)"
DISTRIBUTED_OUT="$(mktemp -t bench_distributed_smoke.XXXXXX.json)"
QUERY_OUT="$(mktemp -t bench_query_smoke.XXXXXX.json)"
trap 'rm -f "$OUT" "$RECOVERY_OUT" "$CONTINUOUS_OUT" "$DISTRIBUTED_OUT" \
  "$QUERY_OUT"' EXIT

cmake --build "$BUILD_DIR" -j --target bench_lsm bench_recovery \
  bench_parallel_pipeline bench_distributed bench_query
"$BUILD_DIR/bench/bench_lsm" --mixed --smoke --out "$OUT"

# Well-formed and carries both engines' numbers.
grep -q '"baseline_single_mutex"' "$OUT"
grep -q '"concurrent_lsm"' "$OUT"
grep -q '"block_cache"' "$OUT"

# One shrunk round of the crash-recovery bench: both recovery paths timed.
"$BUILD_DIR/bench/bench_recovery" --smoke --out "$RECOVERY_OUT"
grep -q '"local_restart_ms"' "$RECOVERY_OUT"
grep -q '"remote_restore_ms"' "$RECOVERY_OUT"

# Continuous vs round loop on the skewed workload: the bench itself fails
# (exit 1) unless continuous beats the round loop.
"$BUILD_DIR/bench/bench_parallel_pipeline" --continuous --smoke \
  --out "$CONTINUOUS_OUT"
grep -q '"continuous_speedup"' "$CONTINUOUS_OUT"

# Distributed seams: socket-transport tax and restart-to-caught-up, both
# through the real RemoteScribe/ScribeServer wire path.
"$BUILD_DIR/bench/bench_distributed" --smoke --out "$DISTRIBUTED_OUT"
grep -q '"transport_tax_x"' "$DISTRIBUTED_OUT"
grep -q '"restart_to_caught_up_ms"' "$DISTRIBUTED_OUT"

# Query serving (dashboard storm): the smoke pass skips the speedup gates
# (too noisy at CI size) but must emit both headline ratios.
"$BUILD_DIR/bench/bench_query" --smoke --out "$QUERY_OUT"
grep -q '"scuba_query_speedup_x"' "$QUERY_OUT"
grep -q '"puma_eval_speedup_x"' "$QUERY_OUT"
echo "bench smoke passed ($OUT, $RECOVERY_OUT, $CONTINUOUS_OUT," \
  "$DISTRIBUTED_OUT, $QUERY_OUT)"
