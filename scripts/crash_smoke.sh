#!/usr/bin/env bash
# Fork/SIGKILL/restart chaos smoke: runs the crash-recovery harness
# (crash_recovery_test, ctest label `crash`) with a reduced round count so
# CI gets real process-kill coverage in seconds. Each harness test forks a
# pipeline driver, arms a randomized kill site via FBSTREAM_KILL_SPEC, lets
# the child die with _exit(137) mid-write, then restarts it through
# Pipeline::Recover and differentially checks the final output against a
# golden no-crash run (byte-identical for exactly-once, superset for
# at-least-once, subset for at-most-once). The full 25-round acceptance
# soak is the default when FBSTREAM_CRASH_ROUNDS is unset.
#
# Usage: scripts/crash_smoke.sh [build-dir] [rounds]
#   (defaults: build, 8 kill rounds per semantics mode)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ROUNDS="${2:-8}"

cmake --build "$BUILD_DIR" -j --target crash_recovery_test

echo "== crash smoke: $ROUNDS kill rounds per semantics mode =="
FBSTREAM_CRASH_ROUNDS="$ROUNDS" \
  "$BUILD_DIR/tests/crash_recovery_test" --gtest_filter='CrashHarnessTest.*'
echo "crash smoke passed."
